"""Figure 8 — the mixed concurrent 10-user test.

Paper shape: five thread groups x two threads (ROLAP-moderate + simple,
BD-complex + simple, and two handcrafted GPU-to-the-limit queries) finish
in "almost a 2x speed up" with the GPUs enabled; the non-GPU queries
perform the same in both configurations.
"""

from repro.bench import ExperimentReport, gantt_chart, speedup
from repro.workloads.scenarios import figure8_thread_groups


def test_fig8_concurrent(benchmark, driver, results_dir):
    groups = figure8_thread_groups()

    def run():
        on = driver.simulate_groups(groups, gpu=True, loops=3)
        off = driver.simulate_groups(groups, gpu=False, loops=3)
        return on, off

    on, off = benchmark(run)
    factor = speedup(off.makespan, on.makespan)

    report = ExperimentReport(
        "fig8", "Concurrent mixed workload elapsed time (paper Figure 8)",
        headers=["metric", "GPU on", "GPU off"],
    )
    report.add_row("elapsed ms", on.makespan * 1e3, off.makespan * 1e3)
    report.add_row("queries completed", on.queries_completed,
                   off.queries_completed)
    report.add_row("speedup", f"{factor:.2f}x", "1.00x")
    # Per-query-class means, to show the non-GPU queries are unaffected.
    on_by = on.elapsed_by_query()
    off_by = off.elapsed_by_query()
    for qid in sorted(set(on_by) & set(off_by)):
        report.add_row(f"avg ms {qid}",
                       1e3 * sum(on_by[qid]) / len(on_by[qid]),
                       1e3 * sum(off_by[qid]) / len(off_by[qid]))
    report.add_note("paper: 'almost a 2x speed up by using the GPU'")
    report.add_chart(gantt_chart(on.completions,
                                 title="GPU on — per-user timeline"))
    report.add_chart(gantt_chart(off.completions,
                                 title="GPU off — per-user timeline"))
    report.emit(results_dir)

    assert on.queries_completed == off.queries_completed
    # Paper: "almost 2x"; fusion lifts the GPU-heavy mix further.
    assert 1.6 < factor < 5.0
    # Simple (never-offloaded) queries see comparable service in both runs:
    # they are short either way, far shorter than the heavy queries.
    for qid in ("S01", "S21", "S41", "S61"):
        if qid in on_by and qid in off_by:
            assert sum(on_by[qid]) < on.makespan / 4
