"""Section 5.1.2 — the 34-of-46 ROLAP memory screen.

"While the DB2 BLU engine is able to run all 46 queries, the prototype was
only able to run 34 of these queries as the memory in the K40 GPU is
limited, and 12 of the queries had memory requirements which exceeded the
memory available."
"""

from repro.bench import ExperimentReport
from repro.workloads.cognos_rolap import (
    cognos_rolap_queries,
    estimate_gpu_memory_requirement,
    screen_queries,
)


def test_rolap_memory_screen(benchmark, driver, config, results_dir):
    def run():
        return screen_queries(driver.gpu_engine)

    runnable, oversized = benchmark(run)
    capacity = config.gpus[0].device_memory_bytes

    report = ExperimentReport(
        "rolap_screen", "ROLAP GPU-memory screening (section 5.1.2)",
        headers=["query", "est. need MB", "capacity MB", "runnable"],
    )
    for query in cognos_rolap_queries():
        need = estimate_gpu_memory_requirement(driver.gpu_engine, query)
        report.add_row(query.query_id, need / 1e6, capacity / 1e6,
                       "no" if query in oversized else "yes")
    report.add_note("paper: 34 runnable, 12 exceed the K40's memory")
    report.emit(results_dir)

    assert len(runnable) == 34
    assert len(oversized) == 12
    # The baseline engine still runs every one of the 46 (spot-check the
    # oversized block functionally).
    result = driver.cpu_engine.execute_sql(oversized[0].sql)
    assert result.table.num_rows > 0
