"""Extension — the multi-user BD Insights mode.

Section 5.1.1: "The workload can be run in several modes with both single
user and varying multi-user combinations using the Apache JMETER load
driver."  The paper only charts the single-user mode (Figures 5–6); this
target runs the multi-user combination — six dashboard analysts, three
sales-report analysts and one data scientist, with think-time pacing — and
measures the fleet-level effect of GPU offload.
"""

from repro.bench import ExperimentReport, gantt_chart
from repro.sim import UserScript, WorkloadSimulator
from repro.workloads.scenarios import bd_insights_multiuser_groups


def test_ext_bd_multiuser(benchmark, driver, config, results_dir):
    groups = bd_insights_multiuser_groups()

    def simulate(gpu: bool):
        users = []
        for name, threads, queries in groups:
            profiles = [driver.profile(q, gpu) for q in queries]
            for t in range(threads):
                users.append(UserScript(
                    user_id=f"{name}-{t + 1}", profiles=list(profiles),
                    loops=2,
                    think_seconds=0.002 if name == "dashboard" else 0.0,
                ))
        simulator = WorkloadSimulator(
            driver._sim_config(gpu))
        return simulator.run(users)

    def run():
        return simulate(True), simulate(False)

    on, off = benchmark(run)

    report = ExperimentReport(
        "ext_bd_multiuser",
        "EXTENSION: multi-user BD Insights (6 dashboard / 3 report / "
        "1 scientist)",
        headers=["metric", "GPU on", "GPU off"],
    )
    report.add_row("makespan ms", on.makespan * 1e3, off.makespan * 1e3)
    report.add_row("queries completed", on.queries_completed,
                   off.queries_completed)
    report.add_row("throughput /h", on.throughput_per_hour(),
                   off.throughput_per_hour())
    on_by = on.elapsed_by_query()
    scientist = [q for q in on_by if q.startswith("C")]
    report.add_row("scientist avg ms",
                   1e3 * sum(sum(on_by[q]) / len(on_by[q])
                             for q in scientist) / max(1, len(scientist)),
                   "-")
    report.add_note("dashboard users pace with think time; the data "
                    "scientist's complex queries drive the offload")
    report.add_chart(gantt_chart(on.completions,
                                 title="GPU on — analyst timeline"))
    report.emit(results_dir)

    assert on.queries_completed == off.queries_completed
    # The fleet finishes sooner with the GPUs absorbing the heavy queries.
    assert on.makespan < off.makespan
