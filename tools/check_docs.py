#!/usr/bin/env python
"""Docs referential-integrity gate (CI "docs" job).

Two failure classes, both of which have bitten hand-maintained docs:

1. **Dangling intra-doc links** — ``[text](other.md)`` pointing at a
   file that does not exist (moved, renamed, never written).
2. **Phantom code references** — a dotted ``repro.*`` name in the prose
   or a code span that no longer imports (renamed module, deleted
   symbol).  Every ``repro.something[.more]`` mention must resolve to a
   real module or attribute; a trailing ``*`` is treated as a wildcard
   and only the parent is resolved.

External links (``http...``) and pure page anchors (``#section``) are
out of scope.  Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py
"""

import importlib
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Every markdown surface that links into docs/ or names repro symbols.
DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
] + sorted(
    os.path.join("docs", name)
    for name in os.listdir(os.path.join(REPO, "docs"))
    if name.endswith(".md")
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SYMBOL = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def check_links(doc_path: str, text: str) -> list:
    """Dangling relative links in one document."""
    errors = []
    base = os.path.dirname(os.path.join(REPO, doc_path))
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not os.path.exists(os.path.join(base, path)):
            errors.append(f"{doc_path}: dangling link -> {target}")
    return errors


def resolve_symbol(dotted: str, wildcard: bool) -> bool:
    """True when ``dotted`` is an importable module or attribute chain."""
    if wildcard:
        # "repro.gpu.kernels.groupby_*": resolve the parent, then ask
        # for any attribute/submodule matching the prefix.
        parent, _, prefix = dotted.rpartition(".")
        if not resolve_symbol(parent, wildcard=False):
            return False
        module = sys.modules.get(parent)
        if module is None:
            return True        # parent was an attribute; accept
        if any(name.startswith(prefix) for name in dir(module)):
            return True
        pkg_dir = getattr(module, "__path__", None)
        if pkg_dir:
            for entry in pkg_dir:
                for fname in os.listdir(entry):
                    if fname.startswith(prefix):
                        return True
        return False
    parts = dotted.split(".")
    # Longest importable module prefix, then getattr the remainder.
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_symbols(doc_path: str, text: str) -> list:
    """Phantom ``repro.*`` references in one document."""
    errors = []
    seen = set()
    for match in _SYMBOL.finditer(text):
        dotted = match.group(0)
        wildcard = text[match.end():match.end() + 1] == "*"
        if (dotted, wildcard) in seen:
            continue
        seen.add((dotted, wildcard))
        if not resolve_symbol(dotted, wildcard):
            errors.append(f"{doc_path}: unresolvable symbol {dotted}"
                          + ("*" if wildcard else ""))
    return errors


def main() -> int:
    """Check every doc; print each problem; non-zero exit on any."""
    errors = []
    for doc_path in DOC_FILES:
        full = os.path.join(REPO, doc_path)
        if not os.path.exists(full):
            errors.append(f"{doc_path}: listed but missing")
            continue
        with open(full) as fh:
            text = fh.read()
        errors.extend(check_links(doc_path, text))
        errors.extend(check_symbols(doc_path, text))
    for line in errors:
        print(f"FAIL {line}")
    if not errors:
        print(f"docs ok: {len(DOC_FILES)} files, links and repro.* "
              "references all resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
