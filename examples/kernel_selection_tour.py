#!/usr/bin/env python
"""A tour of the GPU moderator: kernel selection, racing, error paths.

Walks through the runtime machinery of section 4 on hand-built inputs:

1. three query shapes and the kernel the moderator picks for each
   (shared-memory for tiny group counts, row-lock for many aggregates,
   the regular hash kernel otherwise);
2. racing all applicable kernels and keeping the first finisher;
3. the hash-table overflow error path when the KMV estimate is badly low;
4. the LearningModerator extension converging on the winning kernel.

Run:  python examples/kernel_selection_tour.py
"""

import numpy as np

from repro.blu.datatypes import int64
from repro.blu.expressions import AggFunc
from repro.config import CostModel, Thresholds
from repro.core.metadata import RuntimeMetadata
from repro.core.moderator import GpuModerator, LearningModerator
from repro.gpu.kernels.request import GroupByRequest, PayloadSpec


def shape(rows, groups, n_aggs, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, groups, rows).astype(np.int64)
    payloads = [PayloadSpec(int64(), AggFunc.SUM)] * n_aggs
    metadata = RuntimeMetadata(rows=rows, optimizer_groups=float(groups),
                               kmv_groups=groups, payloads=payloads)
    request = GroupByRequest(keys=keys, key_bits=64, payloads=payloads,
                             estimated_groups=groups)
    return metadata, request


def main() -> None:
    cost = CostModel()
    moderator = GpuModerator(cost, Thresholds())

    print("1) metadata-driven kernel selection")
    for label, (rows, groups, n_aggs) in {
        "group-by-birth-month (12 groups)": (200_000, 12, 2),
        "wide report (8 aggregates)": (200_000, 5_000, 8),
        "regular analytic rollup": (200_000, 5_000, 2),
    }.items():
        metadata, _ = shape(rows, groups, n_aggs)
        kernel, reason = moderator.choose(metadata)
        print(f"   {label:36} -> {kernel.name:16} ({reason})")
    print()

    print("2) racing all candidate kernels on one query")
    metadata, request = shape(300_000, 40, 2, seed=1)
    outcome = moderator.run(request, metadata, race=True)
    print(f"   winner: {outcome.winner.kernel} in "
          f"{outcome.winner.kernel_seconds * 1e3:.3f} ms")
    print(f"   cancelled: {outcome.cancelled} "
          f"(occupied the device for "
          f"{outcome.wasted_device_seconds * 1e3:.3f} ms before the stop)")
    print()

    print("3) the overflow error path (estimate 100, reality ~40000)")
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 40_000, 300_000).astype(np.int64)
    payloads = [PayloadSpec(int64(), AggFunc.SUM)] * 2
    bad = RuntimeMetadata(rows=300_000, optimizer_groups=2_000.0,
                          kmv_groups=2_000, payloads=payloads)
    bad_request = GroupByRequest(keys=keys, key_bits=64, payloads=payloads,
                                 estimated_groups=2_000)
    outcome = moderator.run(bad_request, bad, race=False)
    print(f"   recovered {outcome.winner.n_groups} groups after regrow; "
          f"wasted device time {outcome.wasted_device_seconds * 1e3:.3f} ms")
    print()

    print("4) the learning moderator (paper future work, implemented here)")
    learner = LearningModerator(cost, Thresholds())
    metadata, _ = shape(200_000, 5_000, 2)
    picks = []
    for i in range(6):
        _, request = shape(200_000, 5_000, 2, seed=10 + i)
        picks.append(learner.run(request, metadata).winner.kernel)
    print(f"   per-run choices: {picks}")
    print(f"   (explores each candidate once, then exploits the fastest)")


if __name__ == "__main__":
    main()
