#!/usr/bin/env python
"""Beyond the paper: the implemented future-work extensions.

The paper's prototype stops at group-by/aggregation and sort.  This tour
runs the two extensions this reproduction adds on top — both named by the
paper as next steps — plus the per-query decision inspector:

1. GPU join offload (§6: "study the performance of other compute
   intensive operations (like join) on the GPU");
2. partitioned processing of group-bys whose input exceeds T3 (§4.1:
   "we will need to partition the data and use both the CPU and the
   GPU"), with partitions running data-parallel across both devices;
3. ``explain_decisions`` — plan, offload decisions and cost trace for a
   single query.

Run:  python examples/extensions_tour.py [scale]
"""

import dataclasses
import sys

from repro.core.accelerator import GpuAcceleratedEngine
from repro.workloads.datagen import generate_database, scaled_config


JOIN_SQL = """
SELECT ss_item_sk, SUM(ss_net_paid) AS rev, COUNT(*) AS cnt
FROM store_sales JOIN item ON ss_item_sk = i_item_sk
GROUP BY ss_item_sk ORDER BY rev DESC LIMIT 25
"""

BIG_GROUPBY_SQL = """
SELECT ss_ticket_number, SUM(ss_net_paid) AS paid, COUNT(*) AS items
FROM store_sales GROUP BY ss_ticket_number ORDER BY paid DESC LIMIT 10
"""


def main(scale: float = 0.05) -> None:
    catalog = generate_database(scale=scale, seed=7)
    config = scaled_config(catalog)
    host = config.host

    print("1) GPU join offload (disabled in the paper's prototype)")
    plain = GpuAcceleratedEngine(catalog, config=config)
    joining = GpuAcceleratedEngine(catalog, config=config,
                                   enable_join_offload=True)
    r_plain = plain.execute_sql(JOIN_SQL)
    r_join = joining.execute_sql(JOIN_SQL, query_id="join-tour")
    assert r_plain.table.to_pydict() == r_join.table.to_pydict()
    print(f"   prototype (CPU join): "
          f"{r_plain.profile.elapsed_serial(48, host) * 1e3:8.3f} ms")
    print(f"   with join offload:    "
          f"{r_join.profile.elapsed_serial(48, host) * 1e3:8.3f} ms "
          f"(GPU-JOIN events: "
          f"{sum(1 for e in r_join.profile.events if e.op == 'GPU-JOIN')})")
    print("   (near-tie: FK joins against cache-resident dimensions are "
          "transfer-bound)")
    print()

    print("2) partitioned over-T3 group-by (vs the prototype's CPU path)")
    rows = catalog.table("store_sales").num_rows
    tight = dataclasses.replace(
        config, thresholds=dataclasses.replace(
            config.thresholds, t3_max_rows=rows // 4, sort_min_rows=10**9))
    prototype = GpuAcceleratedEngine(catalog, config=tight)
    partitioned = GpuAcceleratedEngine(catalog, config=tight,
                                       partition_large_groupby=True)
    r_proto = prototype.execute_sql(BIG_GROUPBY_SQL)
    r_part = partitioned.execute_sql(BIG_GROUPBY_SQL, query_id="part-tour")
    waves = [e for e in r_part.profile.events if e.op == "GPU-GROUPBY"]
    print(f"   prototype (CPU):   "
          f"{r_proto.profile.elapsed_serial(48, host) * 1e3:8.3f} ms")
    print(f"   partitioned GPU:   "
          f"{r_part.profile.elapsed_serial(48, host) * 1e3:8.3f} ms "
          f"({len(waves)} partitions across "
          f"{len({e.device_id for e in waves})} devices)")
    print()

    print("3) explain_decisions on the join query")
    print()
    print(joining.explain_decisions(JOIN_SQL))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
