#!/usr/bin/env python
"""Cognos ROLAP: memory screening, serial totals, and throughput sweep.

Reproduces the paper's section 5.2.2 narrative end to end:

1. screen the 46 ROLAP queries against GPU memory (34 runnable, 12 not);
2. run the 34 serially with and without GPU (Table 2's ~8% gain);
3. sweep streams x degree through the closed-loop simulator (Table 3) and
   show the GPU gain growing with concurrency — the CPU-freeing effect.

Run:  python examples/rolap_concurrent.py [scale]
"""

import sys

from repro.workloads.cognos_rolap import screen_queries
from repro.workloads.datagen import generate_database, scaled_config
from repro.workloads.driver import WorkloadDriver


def main(scale: float = 0.05) -> None:
    catalog = generate_database(scale=scale, seed=7)
    config = scaled_config(catalog)
    driver = WorkloadDriver(catalog, config)

    runnable, oversized = screen_queries(driver.gpu_engine)
    print(f"memory screen: {len(runnable)} of 46 queries fit the "
          f"{config.gpus[0].device_memory_bytes / 1e6:.0f} MB device; "
          f"{len(oversized)} exceed it "
          f"({', '.join(q.query_id for q in oversized[:6])}, ...)")
    print()

    on = driver.run_serial(runnable, gpu=True, repeats=5)
    off = driver.run_serial(runnable, gpu=False, repeats=5)
    total_on = sum(r.elapsed_ms for r in on)
    total_off = sum(r.elapsed_ms for r in off)
    print(f"serial totals over {len(runnable)} queries (avg of 5 runs):")
    print(f"  GPU on  {total_on:10.2f} ms")
    print(f"  GPU off {total_off:10.2f} ms")
    print(f"  gain    {(total_off - total_on) / total_off * 100:.2f}%   "
          f"(paper: 8.33%)")
    print()

    print("throughput sweep (queries/hour):")
    print(f"  {'#stream':>8} {'#degree':>8} {'GPU on':>12} "
          f"{'GPU off':>12} {'gain':>8}")
    for streams in (1, 2):
        for degree in (24, 48, 64):
            r_on = driver.simulate_streams(runnable, streams, degree,
                                           gpu=True, loops=2)
            r_off = driver.simulate_streams(runnable, streams, degree,
                                            gpu=False, loops=2)
            tp_on = r_on.throughput_per_hour()
            tp_off = r_off.throughput_per_hour()
            print(f"  {streams:>8} {degree:>8} {tp_on:>12.0f} "
                  f"{tp_off:>12.0f} {(tp_on - tp_off) / tp_off * 100:>7.2f}%")
    print()
    print("the gain grows with streams: offloaded group-bys free CPU")
    print("capacity that the other stream's queries immediately absorb.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
