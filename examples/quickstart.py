#!/usr/bin/env python
"""Quickstart: a columnar database, SQL, and GPU offload in ~60 lines.

Builds a small retail table, runs the same analytic query on stock BLU
(CPU only) and on the GPU-accelerated prototype, verifies the results
match, and prints the simulated timings plus the integrated monitor's
view of what the GPU did.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import make_engine, paper_testbed
from repro.blu import Catalog, Schema, Table
from repro.blu.datatypes import float64, int32, varchar


def build_catalog(rows: int = 300_000, seed: int = 1) -> Catalog:
    rng = np.random.default_rng(seed)
    schema = Schema.of(
        ("sale_item", int32()),
        ("sale_store", int32()),
        ("sale_qty", int32()),
        ("sale_amount", float64()),
        ("sale_channel", varchar(8)),
    )
    table = Table.from_pydict("retail_sales", schema, {
        "sale_item": rng.integers(1, 25_000, rows).tolist(),
        "sale_store": rng.integers(1, 120, rows).tolist(),
        "sale_qty": rng.integers(1, 100, rows).tolist(),
        "sale_amount": np.round(rng.random(rows) * 400, 2).tolist(),
        "sale_channel": rng.choice(
            np.array(["web", "store", "catalog"], dtype=object),
            rows).tolist(),
    })
    catalog = Catalog()
    catalog.register(table)
    return catalog


QUERY = """
SELECT sale_item, COUNT(*) AS orders, SUM(sale_amount) AS revenue,
       AVG(sale_qty) AS avg_qty
FROM retail_sales
WHERE sale_qty > 5
GROUP BY sale_item
ORDER BY revenue DESC
LIMIT 5
"""


def main() -> None:
    catalog = build_catalog()

    baseline = make_engine(catalog, gpu=False)
    accelerated = make_engine(catalog, config=paper_testbed(), gpu=True)

    print("EXPLAIN:")
    print(accelerated.explain_sql(QUERY))
    print()

    cpu_result = baseline.execute_sql(QUERY, query_id="quickstart")
    gpu_result = accelerated.execute_sql(QUERY, query_id="quickstart")

    print("Top items by revenue (identical on both engines):")
    data = gpu_result.table.to_pydict()
    for i in range(gpu_result.table.num_rows):
        print(f"  item {data['sale_item'][i]:>6}  "
              f"orders={data['orders'][i]:>5}  "
              f"revenue={data['revenue'][i]:>12.2f}")
    assert cpu_result.table.to_pydict() == data, "engines disagree!"

    print()
    print(f"simulated elapsed  CPU-only: {cpu_result.elapsed_ms:8.3f} ms")
    print(f"simulated elapsed  GPU:      {gpu_result.elapsed_ms:8.3f} ms")
    print(f"offloaded to GPU: {gpu_result.profile.offloaded}")
    print()
    print(accelerated.monitor.report())


if __name__ == "__main__":
    main()
