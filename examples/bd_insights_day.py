#!/usr/bin/env python
"""A day in the life of BD Insights (paper section 5.1.1 / 5.2.1).

Generates the TPC-DS-derived BD Insights database, then runs the three
analyst populations — Returns Dashboard (simple), Sales Report
(intermediate) and Data Scientist (complex) — with and without GPU
acceleration, reproducing the per-class behaviour of Figures 5 and 6:
complex queries gain ~20%, intermediate queries hug the baseline, simple
queries are never sent to the GPU at all.

Run:  python examples/bd_insights_day.py [scale]
"""

import sys

from repro.workloads.bdinsights import queries_by_category
from repro.workloads.datagen import generate_database, scaled_config
from repro.workloads.driver import WorkloadDriver
from repro.workloads.query import QueryCategory


def main(scale: float = 0.05) -> None:
    print(f"generating BD Insights database at scale {scale} ...")
    catalog = generate_database(scale=scale, seed=7)
    config = scaled_config(catalog)
    print(f"  {len(catalog.table_names())} tables, "
          f"{catalog.total_rows:,} rows, "
          f"{catalog.total_encoded_nbytes / 1e6:.1f} MB encoded")
    print(f"  simulated GPUs: {config.gpu_count} x "
          f"{config.gpus[0].device_memory_bytes / 1e6:.0f} MB")
    print()

    driver = WorkloadDriver(catalog, config)
    for category in (QueryCategory.COMPLEX, QueryCategory.INTERMEDIATE,
                     QueryCategory.SIMPLE):
        queries = queries_by_category(category)
        on = driver.run_serial(queries, gpu=True)
        off = driver.run_serial(queries, gpu=False)
        total_on = sum(r.elapsed_ms for r in on)
        total_off = sum(r.elapsed_ms for r in off)
        offloaded = sum(1 for r in on if r.offloaded)
        gain = (total_off - total_on) / total_off * 100 if total_off else 0
        print(f"{category.value:>12}: {len(queries):3} queries | "
              f"GPU on {total_on:9.2f} ms | off {total_off:9.2f} ms | "
              f"gain {gain:5.1f}% | offloaded {offloaded}/{len(queries)}")
        if category is QueryCategory.COMPLEX:
            for a, b in zip(on, off):
                per = (b.elapsed_ms - a.elapsed_ms) / b.elapsed_ms * 100
                print(f"      {a.query_id}: {a.elapsed_ms:8.2f} vs "
                      f"{b.elapsed_ms:8.2f} ms ({per:+.1f}%)")
    print()
    print("kernel-level view of what the GPU executed:")
    for device in driver.gpu_engine.devices:
        if device.profiler.records:
            print(device.profiler.report())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
