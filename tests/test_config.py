"""Unit tests for the hardware presets."""


from repro.config import (
    GpuSpec,
    HostSpec,
    cpu_only_testbed,
    paper_testbed,
    single_gpu_testbed,
)


class TestPresets:
    def test_paper_testbed_matches_section5(self):
        config = paper_testbed()
        assert config.host.cores == 24
        assert config.host.hardware_threads == 96
        assert config.gpu_count == 2
        for spec in config.gpus:
            assert spec.cuda_cores == 2880
            assert spec.device_memory_bytes == 12 * 1024**3
            assert spec.smx_count == 15

    def test_variants(self):
        assert single_gpu_testbed().gpu_count == 1
        assert cpu_only_testbed().gpu_count == 0

    def test_pcie_ratio_exceeds_4x(self):
        spec = GpuSpec()
        assert spec.pcie_pinned_bw / spec.pcie_unpinned_bw > 4.0

    def test_shared_memory_per_smx(self):
        assert GpuSpec().shared_mem_per_smx == 64 * 1024


class TestHostCapacity:
    def test_monotone(self):
        host = HostSpec()
        values = [host.effective_capacity(n) for n in (1, 12, 24, 48, 96)]
        assert values == sorted(values)

    def test_zero_threads(self):
        assert HostSpec().effective_capacity(0) == 0.0


class TestThresholds:
    def test_defaults_ordered(self):
        t = paper_testbed().thresholds
        assert t.t1_min_rows < t.t3_max_rows
        assert t.t2_min_groups >= 1
        assert t.many_aggs_threshold == 5
