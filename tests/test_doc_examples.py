"""Docs stay runnable: execute every python snippet in the GPU docs.

Each document's ```python fences run in order inside one shared
namespace (later snippets may build on earlier ones), so a stale import,
renamed symbol, or broken claim in `docs/fusion.md` or
`docs/gpu_cache.md` fails the suite instead of silently rotting.
"""

import os
import re

import pytest


DOCS_DIR = os.path.join(os.path.dirname(__file__), "..", "docs")

_FENCE = re.compile(r"^```python\n(.*?)^```$", re.DOTALL | re.MULTILINE)


def python_snippets(doc_name):
    with open(os.path.join(DOCS_DIR, doc_name)) as fh:
        return _FENCE.findall(fh.read())


@pytest.mark.parametrize("doc_name", ["fusion.md", "gpu_cache.md"])
def test_doc_has_runnable_snippets(doc_name):
    assert python_snippets(doc_name), f"{doc_name} lost its examples"


@pytest.mark.parametrize("doc_name", ["fusion.md", "gpu_cache.md"])
def test_doc_snippets_execute(doc_name):
    namespace = {}
    for i, snippet in enumerate(python_snippets(doc_name)):
        code = compile(snippet, f"{doc_name}[snippet {i}]", "exec")
        exec(code, namespace)    # noqa: S102 - executing our own docs
