"""Integration tests for the hybrid group-by executor (Figures 2-3)."""

import dataclasses

import pytest

from repro.blu import BluEngine
from repro.config import GpuSpec, paper_testbed
from repro.core import GpuAcceleratedEngine
from tests.conftest import tables_equal


GROUPBY_SQL = ("SELECT s_item, SUM(s_qty) AS q, SUM(s_paid) AS paid, "
               "COUNT(*) AS c FROM sales GROUP BY s_item")
SMALL_SQL = ("SELECT s_store, COUNT(*) AS c FROM sales "
             "WHERE s_item = 7 GROUP BY s_store")


class TestOffloadPaths:
    def test_sweet_spot_offloads(self, gpu_engine):
        result = gpu_engine.execute_sql(GROUPBY_SQL, query_id="gq")
        assert result.profile.offloaded
        ops = [e.op for e in result.profile.events]
        assert "GPU-GROUPBY" in ops
        assert "KMV" in ops and "MEMCPY" in ops
        assert "LGHT" not in ops                  # removed from the chain

    def test_small_query_stays_on_cpu(self, gpu_engine):
        result = gpu_engine.execute_sql(SMALL_SQL, query_id="small")
        assert not result.profile.offloaded
        ops = [e.op for e in result.profile.events]
        assert "LGHT" in ops                      # stock Figure-1 chain
        decisions = gpu_engine.monitor.decisions_for("small")
        assert decisions and decisions[0].path == "cpu-small"

    def test_oversized_query_routed_to_cpu(self, small_catalog):
        config = paper_testbed()
        thresholds = dataclasses.replace(config.thresholds,
                                         t1_min_rows=100, t3_max_rows=1000)
        config = dataclasses.replace(config, thresholds=thresholds)
        engine = GpuAcceleratedEngine(small_catalog, config=config)
        result = engine.execute_sql(GROUPBY_SQL, query_id="big")
        assert not result.profile.offloaded
        decisions = engine.monitor.decisions_for("big")
        assert decisions[0].path == "cpu-large"

    def test_reservation_failure_falls_back_to_cpu(self, small_catalog):
        """Section 2.1.1 option 2: no device memory -> run on the host.

        The devices are full-sized (the working-set screen would route a
        query to the CPU before trying to reserve on an undersized card),
        but another tenant holds almost all of their memory, so the
        runtime reservation fails and the query degrades to the CPU chain.
        """
        config = paper_testbed()
        thresholds = dataclasses.replace(config.thresholds,
                                         t1_min_rows=1000,
                                         sort_min_rows=1000)
        config = dataclasses.replace(config, thresholds=thresholds)
        engine = GpuAcceleratedEngine(small_catalog, config=config)
        hogs = [
            engine.scheduler.try_acquire(
                device.memory.capacity - device.memory.reserved - 1024,
                tag="hog")
            for device in engine.devices
        ]
        assert all(hogs)
        try:
            result = engine.execute_sql(GROUPBY_SQL, query_id="starved")
        finally:
            for hog in hogs:
                engine.scheduler.release(hog)
        assert not result.profile.offloaded
        decisions = engine.monitor.decisions_for("starved")
        assert any(d.path == "cpu-fallback" for d in decisions)
        assert engine.monitor.counters.reservation_fallbacks >= 1


class TestFunctionalParity:
    @pytest.mark.parametrize("sql", [
        GROUPBY_SQL,
        "SELECT s_store, s_channel, SUM(s_paid) AS p, MIN(s_qty) AS mn, "
        "MAX(s_qty) AS mx FROM sales GROUP BY s_store, s_channel",
        "SELECT s_item, AVG(s_paid) AS avg_paid FROM sales "
        "WHERE s_qty > 20 GROUP BY s_item",
        "SELECT s_channel, MIN(s_channel) AS lo, COUNT(*) AS c "
        "FROM sales GROUP BY s_channel",
    ])
    def test_gpu_result_equals_cpu_result(self, sql, gpu_engine,
                                          small_catalog):
        cpu = BluEngine(small_catalog)
        gpu_result = gpu_engine.execute_sql(sql)
        cpu_result = cpu.execute_sql(sql)
        assert tables_equal(gpu_result.table, cpu_result.table)

    def test_memory_released_after_query(self, gpu_engine):
        gpu_engine.execute_sql(GROUPBY_SQL)
        for device in gpu_engine.devices:
            # Only the column cache's own entries may outlive the query;
            # every query-scoped reservation must be gone.
            live = device.memory.live_reservations
            assert all(r.tag == "cache" for r in live)
            cached = device.cache.cached_bytes if device.cache else 0
            assert device.memory.reserved == cached
            assert device.outstanding_jobs == 0
        assert gpu_engine.pinned.used == 0


class TestAccounting:
    def test_gpu_event_carries_memory_and_device(self, gpu_engine):
        result = gpu_engine.execute_sql(GROUPBY_SQL)
        gpu_events = [e for e in result.profile.events if e.uses_gpu]
        assert gpu_events
        event = gpu_events[0]
        assert event.gpu_memory_bytes > 0
        assert event.device_id in (0, 1)
        assert event.max_degree == 1              # one dispatching thread

    def test_profiler_sees_the_kernel(self, gpu_engine):
        gpu_engine.execute_sql(GROUPBY_SQL)
        records = [r for d in gpu_engine.devices
                   for r in d.profiler.records]
        assert any(r.kernel.startswith("groupby") for r in records)

    def test_offload_cheaper_on_host_than_cpu_chain(self, gpu_engine,
                                                    small_catalog):
        cpu = BluEngine(small_catalog)
        gpu_result = gpu_engine.execute_sql(GROUPBY_SQL)
        cpu_result = cpu.execute_sql(GROUPBY_SQL)
        assert gpu_result.profile.cpu_core_seconds < \
            cpu_result.profile.cpu_core_seconds


class TestRacing:
    def test_racing_engine_matches_results(self, small_catalog):
        config = paper_testbed()
        thresholds = dataclasses.replace(config.thresholds,
                                         t1_min_rows=5000,
                                         sort_min_rows=5000)
        config = dataclasses.replace(config, thresholds=thresholds)
        racing = GpuAcceleratedEngine(small_catalog, config=config,
                                      race_kernels=True)
        plain = BluEngine(small_catalog)
        r1 = racing.execute_sql(GROUPBY_SQL)
        r2 = plain.execute_sql(GROUPBY_SQL)
        assert tables_equal(r1.table, r2.table)
        assert racing.monitor.counters.kernels_raced >= 1
        assert racing.monitor.counters.kernels_cancelled >= 1


class TestDistinctOnGpuPath:
    def test_count_distinct_parity(self, gpu_engine, small_catalog):
        from repro.blu import BluEngine

        sql = ("SELECT s_store, COUNT(DISTINCT s_item) AS items, "
               "SUM(DISTINCT s_qty) AS dq FROM sales GROUP BY s_store")
        cpu = BluEngine(small_catalog)
        gpu_result = gpu_engine.execute_sql(sql)
        assert gpu_result.profile.offloaded
        assert tables_equal(gpu_result.table, cpu.execute_sql(sql).table)
