"""Sharded N-device execution: byte-identity, instants, DDL versioning.

The sharded data path must be invisible in the *answers*: for any shard
count the merged result is byte-identical to the CPU chain (group-by via
the renumber-merge, sort via the k-way stable merge, join probes via
order-preserving concatenation).  These tests run the 50k-row fixture on
a four-device engine with sharding on and compare against ``BluEngine``
on the same tables.
"""

import dataclasses

import pytest

from repro.blu import BluEngine, Catalog
from repro.config import paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.gpu.shard import build_shard_map
from tests.conftest import tables_equal


GROUPBY_SQL = ("SELECT s_store, SUM(s_paid) AS paid, COUNT(*) AS c "
               "FROM sales GROUP BY s_store")
WIDE_GROUPBY_SQL = ("SELECT s_item, SUM(s_qty) AS q, COUNT(*) AS c "
                    "FROM sales GROUP BY s_item")
SORT_SQL = "SELECT s_channel, s_qty FROM sales ORDER BY s_channel, s_qty"
FILTERED_SORT_SQL = ("SELECT s_paid, s_ticket FROM sales "
                     "WHERE s_item < 250 ORDER BY s_paid, s_ticket")
JOIN_SQL = ("SELECT st_state, SUM(s_paid) AS rev, COUNT(*) AS c "
            "FROM sales JOIN stores ON s_store = st_id "
            "GROUP BY st_state ORDER BY rev DESC")

ALL_SQL = (GROUPBY_SQL, WIDE_GROUPBY_SQL, SORT_SQL, FILTERED_SORT_SQL,
           JOIN_SQL)


def sharded_config(devices: int = 4, **overrides):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     sort_min_rows=5_000)
    return dataclasses.replace(
        config,
        thresholds=thresholds,
        gpus=tuple(config.gpus[0] for _ in range(devices)),
        shard_enabled=True,
        nvlink_enabled=True,
        fusion_enabled=False,
        **overrides,
    )


@pytest.fixture()
def shard_catalog(sales_table, stores_table) -> Catalog:
    """A per-test catalog: shard-map DDL must not leak across tests."""
    catalog = Catalog()
    catalog.register(sales_table)
    catalog.register(stores_table)
    return catalog


@pytest.fixture()
def sharded_engine(shard_catalog) -> GpuAcceleratedEngine:
    return GpuAcceleratedEngine(shard_catalog, config=sharded_config(),
                                enable_join_offload=True)


def shard_execs(engine, operator=None):
    return [s for s in engine.tracer.spans if s.name == "shard.exec"
            and (operator is None
                 or s.attributes.get("operator") == operator)]


class TestShardMapDdl:
    def test_engine_registers_maps_for_big_tables(self, sharded_engine,
                                                  shard_catalog):
        maps = {m.table: m for m in shard_catalog.shard_maps()}
        # sales (50k rows) clears t1_min_rows; stores (12 rows) must not.
        assert maps["sales"].devices == (0, 1, 2, 3)
        assert "stores" not in maps
        assert shard_catalog.version > 1   # registration is DDL

    def test_register_and_drop_bump_the_version(self, shard_catalog):
        before = shard_catalog.version
        shard_catalog.register_shard_map(build_shard_map("sales", [0, 1]))
        assert shard_catalog.version == before + 1
        shard_catalog.drop_shard_map("sales")
        assert shard_catalog.version == before + 2
        shard_catalog.drop_shard_map("sales")     # no-op: already dropped
        assert shard_catalog.version == before + 2

    def test_reregistration_invalidates_cached_segments(
            self, sharded_engine, shard_catalog):
        # The filtered sort declines sharding and runs whole-job, which
        # stages its columns through the device cache (the sharded path
        # ships per-shard slices and bypasses it — docs/scale_out.md).
        sharded_engine.execute_sql(FILTERED_SORT_SQL, query_id="warm")
        cached = [d for d in sharded_engine.devices
                  if d.cache is not None and d.cache.cached_bytes > 0]
        assert cached, "the warm run staged nothing"
        # Re-registering the shard map is DDL: the catalog version moves,
        # so every segment staged under the old placement misses.
        shard_catalog.register_shard_map(
            build_shard_map("sales", [0, 1, 2]))
        caches = [d.cache for d in sharded_engine.devices
                  if d.cache is not None]
        hits_before = sum(c.hits for c in caches)
        misses_before = sum(c.misses for c in caches)
        sharded_engine.execute_sql(FILTERED_SORT_SQL, query_id="cold")
        # No hit may come from a segment staged under the old placement.
        assert sum(c.hits for c in caches) == hits_before
        assert sum(c.misses for c in caches) > misses_before


class TestShardedParity:
    @pytest.mark.parametrize("sql", ALL_SQL)
    def test_four_device_results_match_cpu(self, sql, sharded_engine,
                                           shard_catalog):
        want = BluEngine(shard_catalog).execute_sql(sql).table
        got = sharded_engine.execute_sql(sql).table
        assert tables_equal(want, got)

    @pytest.mark.parametrize("devices", [2, 3, 8])
    def test_any_shard_count_matches_cpu(self, devices, shard_catalog):
        engine = GpuAcceleratedEngine(
            shard_catalog, config=sharded_config(devices),
            enable_join_offload=True)
        for sql in ALL_SQL:
            want = BluEngine(shard_catalog).execute_sql(sql).table
            assert tables_equal(want, engine.execute_sql(sql).table)

    def test_groupby_and_sort_actually_shard(self, sharded_engine):
        sharded_engine.execute_sql(WIDE_GROUPBY_SQL, query_id="g")
        sharded_engine.execute_sql(SORT_SQL, query_id="s")
        groupby = shard_execs(sharded_engine, "groupby")
        sort = shard_execs(sharded_engine, "sort")
        assert groupby and groupby[0].attributes["gpu_shards"] == 4
        assert sort and sort[0].attributes["gpu_shards"] == 4
        for span in groupby + sort:
            assert span.attributes["shards"] == 4
            assert span.attributes["rerouted"] == 0
            assert span.attributes["nvlink"] is True

    def test_shard_parts_cover_every_row(self, sharded_engine):
        sharded_engine.execute_sql(WIDE_GROUPBY_SQL, query_id="g")
        (exec_span,) = shard_execs(sharded_engine, "groupby")
        parts = [s for s in sharded_engine.tracer.spans
                 if s.name == "shard.part"
                 and s.attributes.get("operator") == "groupby"]
        assert len(parts) == 4
        assert sum(p.attributes["rows"] for p in parts) \
            == exec_span.attributes["rows"]
        assert sorted(p.attributes["device_id"] for p in parts) \
            == [0, 1, 2, 3]

    def test_shard_off_is_inert(self, shard_catalog):
        engine = GpuAcceleratedEngine(
            shard_catalog,
            config=dataclasses.replace(sharded_config(),
                                       shard_enabled=False),
            enable_join_offload=True)
        for sql in ALL_SQL:
            want = BluEngine(shard_catalog).execute_sql(sql).table
            assert tables_equal(want, engine.execute_sql(sql).table)
        assert not shard_execs(engine)
        assert not shard_catalog.shard_maps()   # no DDL either


class TestInterconnectAccounting:
    def test_sharded_run_books_link_traffic(self, sharded_engine):
        sharded_engine.execute_sql(WIDE_GROUPBY_SQL, query_id="g")
        snap = sharded_engine.interconnect.snapshot()
        pcie = [label for label in snap if label.startswith("pcie")
                and label != "pcie-host"]
        assert len(pcie) == 4          # every shard staged over its link
        assert all(snap[label]["bytes_total"] > 0 for label in pcie)
        assert "nvlink" in snap        # the exchange crossed the mesh
        assert snap["nvlink"]["bytes_total"] > 0

    def test_stats_snapshot_exposes_interconnect(self, sharded_engine):
        sharded_engine.execute_sql(WIDE_GROUPBY_SQL, query_id="g")
        stats = sharded_engine.stats_snapshot()
        assert stats["interconnect"] == \
            sharded_engine.interconnect.snapshot()
