"""Bit-identity guarantees of out-of-core partitioned execution.

The partitioned paths promise *byte-identical* results to the stock CPU
engine — not approximately-equal aggregates.  Group-bys renumber merged
partitions into global first-appearance order and compute aggregates
over the full table, and partitioned sorts stable-merge contiguous
slices, so equality must hold exactly for any partition count and any
fault mix.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blu import BluEngine
from repro.config import GpuSpec, paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.faults import FAULT_SITES, FaultPlan, FaultRule
from repro.gpu.partition import PartitionPlan

GROUPBY_SQL = ("SELECT s_item, SUM(s_qty) AS q, SUM(s_paid) AS paid, "
               "COUNT(*) AS c FROM sales GROUP BY s_item")
SORT_SQL = "SELECT s_item, s_ticket FROM sales ORDER BY s_item"

_baseline_cache: dict[str, object] = {}


def make_engine(small_catalog, t3=20_000, partition=True, faults=None,
                gpus=None):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=1000,
                                     t3_max_rows=t3, sort_min_rows=10**9)
    config = dataclasses.replace(config, thresholds=thresholds,
                                 faults=faults)
    if gpus is not None:
        config = dataclasses.replace(config, gpus=gpus)
    return GpuAcceleratedEngine(small_catalog, config=config,
                                partition_large_groupby=partition)


def cpu_baseline(small_catalog, sql):
    if sql not in _baseline_cache:
        _baseline_cache[sql] = \
            BluEngine(small_catalog).execute_sql(sql).table.to_pydict()
    return _baseline_cache[sql]


class TestPartitionCountOne:
    def test_forced_single_partition_is_byte_identical(
            self, small_catalog, monkeypatch):
        """Partition count 1 must degenerate to the unpartitioned result
        bit-for-bit: one hash partition holds every row in global order,
        and the merge renumber is the identity permutation."""
        forced = PartitionPlan(
            partitions=1, rows=50_000, working_set_bytes=1,
            capacity_bytes=10**9, gpu_seconds=0.0, cpu_seconds=1.0,
            merge_seconds=0.0, reason="forced single partition")
        monkeypatch.setattr(
            "repro.core.hybrid_groupby.plan_groupby_partitions",
            lambda **kw: forced)
        engine = make_engine(small_catalog)
        result = engine.execute_sql(GROUPBY_SQL, query_id="one")
        decisions = engine.monitor.decisions_for("one")
        assert any(d.path == "gpu-partitioned" for d in decisions)
        assert result.table.to_pydict() == \
            cpu_baseline(small_catalog, GROUPBY_SQL)

    def test_many_partitions_still_byte_identical(self, small_catalog):
        """Not approximate-modulo-reordering: the real multi-partition
        path reproduces the CPU table exactly, including group order."""
        engine = make_engine(small_catalog, t3=10_000)
        result = engine.execute_sql(GROUPBY_SQL, query_id="many")
        gpu_ops = [e for e in result.profile.events
                   if e.op == "GPU-GROUPBY"]
        assert len(gpu_ops) >= 5
        assert result.table.to_pydict() == \
            cpu_baseline(small_catalog, GROUPBY_SQL)


class TestOversizedSinglePartition:
    def test_declines_to_cpu_when_no_slice_fits(self, small_catalog):
        """A device too small for even one max_partitions slice keeps
        the paper's CPU fallback — and says why."""
        tiny = dataclasses.replace(GpuSpec(), device_memory_bytes=4 * 1024)
        engine = make_engine(small_catalog, gpus=(tiny,))
        result = engine.execute_sql(GROUPBY_SQL, query_id="tiny")
        decisions = engine.monitor.decisions_for("tiny")
        assert decisions[0].path == "cpu-large"
        assert "no admissible partition count" in decisions[0].reason
        assert not any(e.uses_gpu for e in result.profile.events)
        assert result.table.to_pydict() == \
            cpu_baseline(small_catalog, GROUPBY_SQL)


fault_rules = st.builds(
    lambda site, device_id, trigger: FaultRule(
        site=site, device_id=device_id,
        stall_seconds=2e-3 if site == "transfer" else 0.0, **trigger),
    site=st.sampled_from(FAULT_SITES),
    device_id=st.sampled_from([-1, 0, 1]),
    trigger=st.one_of(
        st.integers(1, 4).map(lambda n: {"nth": (n,)}),
        st.sampled_from([0.3, 0.7, 1.0]).map(lambda p: {"probability": p}),
        st.integers(1, 3).map(lambda k: {"every": k}),
    ),
)


@given(rule=fault_rules, seed=st.integers(0, 2**16),
       t3=st.sampled_from([5_000, 10_000, 20_000]))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_partitioned_bit_identical_for_any_count_and_faults(
        small_catalog, rule, seed, t3):
    """The property the CI gate leans on: whatever the partition count
    (driven here through T3) and whatever one fault rule does to the
    partition launches — failed leases, lost devices, pinned-pool
    exhaustion — every partition that degrades re-runs on the CPU and
    the merged table equals the CPU baseline byte-for-byte."""
    plan = FaultPlan(rules=(rule,), seed=seed)
    engine = make_engine(small_catalog, t3=t3, faults=plan)
    result = engine.execute_sql(GROUPBY_SQL, query_id="prop")
    assert result.table.to_pydict() == \
        cpu_baseline(small_catalog, GROUPBY_SQL)
