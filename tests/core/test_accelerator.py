"""Unit tests for the GpuAcceleratedEngine facade."""

import pytest

from repro.blu import BluEngine
from repro.config import cpu_only_testbed, paper_testbed, single_gpu_testbed
from repro.core import GpuAcceleratedEngine, make_engine


class TestConstruction:
    def test_requires_gpus(self, small_catalog):
        with pytest.raises(ValueError):
            GpuAcceleratedEngine(small_catalog, config=cpu_only_testbed())

    def test_device_count_follows_config(self, small_catalog):
        two = GpuAcceleratedEngine(small_catalog, config=paper_testbed())
        one = GpuAcceleratedEngine(small_catalog,
                                   config=single_gpu_testbed())
        assert len(two.devices) == 2
        assert len(one.devices) == 1

    def test_make_engine_dispatch(self, small_catalog):
        assert isinstance(make_engine(small_catalog, gpu=False), BluEngine)
        assert isinstance(make_engine(small_catalog, gpu=True),
                          GpuAcceleratedEngine)

    def test_learning_moderator_flag(self, small_catalog):
        from repro.core.moderator import LearningModerator

        engine = GpuAcceleratedEngine(small_catalog,
                                      learning_moderator=True)
        assert isinstance(engine.moderator, LearningModerator)


class TestQueryFlow:
    def test_profiles_land_in_monitor(self, gpu_engine):
        gpu_engine.execute_sql("SELECT COUNT(*) AS c FROM sales",
                               query_id="m1")
        gpu_engine.execute_sql("SELECT COUNT(*) AS c FROM stores",
                               query_id="m2")
        assert len(gpu_engine.monitor.profiles) == 2

    def test_query_id_threads_through_decisions(self, gpu_engine):
        gpu_engine.execute_sql(
            "SELECT s_item, COUNT(*) AS c FROM sales GROUP BY s_item",
            query_id="tagged")
        assert gpu_engine.monitor.decisions_for("tagged")

    def test_explain_passthrough(self, gpu_engine):
        text = gpu_engine.explain_sql(
            "SELECT s_store, COUNT(*) AS c FROM sales GROUP BY s_store")
        assert "GROUPBY" in text

    def test_catalog_property(self, gpu_engine, small_catalog):
        assert gpu_engine.catalog is small_catalog

    def test_execute_plan(self, gpu_engine, small_catalog):
        from repro.blu.sql import parse_query

        plan = parse_query("SELECT s_item, SUM(s_qty) AS q FROM sales "
                           "GROUP BY s_item", catalog=small_catalog)
        result = gpu_engine.execute_plan(plan, query_id="p1")
        assert result.table.num_rows > 0


class TestExplainDecisions:
    def test_renders_plan_decisions_and_trace(self, gpu_engine):
        text = gpu_engine.explain_decisions(
            "SELECT s_item, SUM(s_qty) AS q FROM sales GROUP BY s_item")
        assert "== plan ==" in text
        assert "== offload decisions ==" in text
        assert "groupby" in text
        assert "GPU-GROUPBY" in text
        assert "simulated ms" in text

    def test_no_offloadable_operators(self, gpu_engine):
        text = gpu_engine.explain_decisions(
            "SELECT s_item FROM sales WHERE s_item = 3")
        assert "(none — no offloadable operators)" in text
