"""Integration tests for the column cache across executors + scheduler."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blu import BluEngine
from repro.config import GpuSpec, paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.core.scheduler import MultiGpuScheduler
from repro.faults import FaultPlan
from repro.gpu.cache import DeviceColumnCache, SegmentKey
from repro.gpu.device import make_devices
from tests.conftest import tables_equal


GROUPBY_SQL = ("SELECT s_item, SUM(s_qty) AS q, SUM(s_paid) AS paid "
               "FROM sales GROUP BY s_item")
SORT_SQL = ("SELECT s_ticket, s_paid FROM sales "
            "ORDER BY s_paid DESC, s_ticket")


def _engine(small_catalog, cache_fraction, **kwargs):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     sort_min_rows=5_000)
    config = dataclasses.replace(config, thresholds=thresholds,
                                 cache_fraction=cache_fraction)
    if "faults" in kwargs:
        config = dataclasses.replace(config, faults=kwargs.pop("faults"))
    if "gpus" in kwargs:
        config = dataclasses.replace(config, gpus=kwargs.pop("gpus"))
    return GpuAcceleratedEngine(small_catalog, config=config, **kwargs)


class TestCrossQueryHits:
    def test_repeated_groupby_hits_the_cache(self, small_catalog):
        engine = _engine(small_catalog, 0.25)
        engine.execute_sql(GROUPBY_SQL, query_id="q1")
        engine.execute_sql(GROUPBY_SQL, query_id="q2")
        stats = engine.cache_stats()
        assert sum(s["hits"] for s in stats) > 0
        assert sum(s["hit_bytes"] for s in stats) > 0

    def test_hit_elides_transfer_bytes(self, small_catalog):
        engine = _engine(small_catalog, 0.25)
        _res, first = engine.profile_sql(GROUPBY_SQL, query_id="p1")
        _res, second = engine.profile_sql(GROUPBY_SQL, query_id="p2")
        assert second.cache_summary()["hits"] > 0
        assert second.bytes_in < first.bytes_in
        # The elided bytes account exactly for the difference.
        assert second.bytes_in + second.cache_summary()["hit_bytes"] \
            == first.bytes_in

    def test_profile_renders_cache_section(self, small_catalog):
        engine = _engine(small_catalog, 0.25)
        engine.execute_sql(GROUPBY_SQL, query_id="p1")
        _res, profile = engine.profile_sql(GROUPBY_SQL, query_id="p2")
        text = profile.to_text()
        assert "-- column cache --" in text
        assert "hit" in text
        assert profile.to_dict()["cache"]["summary"]["hits"] > 0

    def test_zero_fraction_never_caches(self, small_catalog):
        engine = _engine(small_catalog, 0.0)
        engine.execute_sql(GROUPBY_SQL, query_id="q1")
        engine.execute_sql(GROUPBY_SQL, query_id="q2")
        assert engine.cache_stats() == []
        for device in engine.devices:
            assert device.cache is None
            assert device.memory.reserved == 0

    def test_invalid_fraction_rejected(self, small_catalog):
        with pytest.raises(ValueError, match="cache_fraction"):
            _engine(small_catalog, 1.0)

    def test_sort_path_hits_the_cache(self, small_catalog):
        engine = _engine(small_catalog, 0.25)
        engine.execute_sql(SORT_SQL, query_id="s1")
        before = sum(s["hits"] for s in engine.cache_stats())
        engine.execute_sql(SORT_SQL, query_id="s2")
        after = sum(s["hits"] for s in engine.cache_stats())
        assert after > before


class TestSchedulerAffinity:
    def _scheduler(self):
        devices = make_devices((GpuSpec(), GpuSpec()))
        for device in devices:
            device.cache = DeviceColumnCache(
                device.memory,
                budget_bytes=device.memory.capacity // 4,
                device_id=device.device_id,
            )
        return devices, MultiGpuScheduler(devices)

    def test_affinity_steers_to_cached_device(self):
        devices, scheduler = self._scheduler()
        key = SegmentKey("t", "c", "key:abc", 0)
        devices[1].cache.insert(key, 1024)
        lease = scheduler.try_acquire(4096, affinity=[key])
        assert lease.device is devices[1]
        scheduler.release(lease)

    def test_without_affinity_least_loaded_wins(self):
        devices, scheduler = self._scheduler()
        devices[1].cache.insert(SegmentKey("t", "c", "key:abc", 0), 1024)
        devices[1].outstanding_jobs = 1
        lease = scheduler.try_acquire(4096)
        assert lease.device is devices[0]
        scheduler.release(lease)

    def test_pressure_shrinks_cache_before_rejecting(self):
        spec = GpuSpec()
        devices = make_devices((spec,))
        device = devices[0]
        capacity = device.memory.capacity
        device.cache = DeviceColumnCache(device.memory,
                                         budget_bytes=capacity // 2,
                                         device_id=0)
        device.cache.insert(SegmentKey("t", "a", "key:a", 0), capacity // 2)
        # Free memory alone cannot satisfy this, free + cache can.
        want = capacity - capacity // 4
        lease = scheduler = MultiGpuScheduler(devices)
        lease = scheduler.try_acquire(want)
        assert lease is not None
        assert device.cache.cached_bytes == 0
        evicted = device.cache.stats()
        assert evicted["evictions"] == 1
        scheduler.release(lease)

    def test_pressure_protects_affine_segments(self):
        spec = GpuSpec()
        devices = make_devices((spec,))
        device = devices[0]
        capacity = device.memory.capacity
        device.cache = DeviceColumnCache(device.memory,
                                         budget_bytes=capacity // 2,
                                         device_id=0)
        keep = SegmentKey("t", "keep", "key:keep", 0)
        device.cache.insert(keep, capacity // 4)
        device.cache.insert(SegmentKey("t", "drop", "key:drop", 0),
                            capacity // 4)
        scheduler = MultiGpuScheduler(devices)
        lease = scheduler.try_acquire(capacity // 2 + capacity // 8,
                                      affinity=[keep])
        assert lease is not None
        assert keep in device.cache
        scheduler.release(lease)

    def test_device_loss_invalidates_cache(self):
        devices, scheduler = self._scheduler()
        device = devices[0]
        key = SegmentKey("t", "c", "key:abc", 0)
        device.cache.insert(key, 1024)
        lease = scheduler.try_acquire(4096, affinity=[key])
        assert lease.device is device
        device.alive = False
        scheduler.record_failure(lease)
        assert len(device.cache) == 0
        assert device.cache.stats()["invalidations"] == 1
        scheduler.release(lease)

    def test_snapshot_reports_cached_bytes(self):
        devices, scheduler = self._scheduler()
        devices[0].cache.insert(SegmentKey("t", "c", "key:abc", 0), 1024)
        snap = scheduler.snapshot()
        assert snap[0]["cached_bytes"] == 1024
        assert snap[1]["cached_bytes"] == 0


class TestCatalogVersioning:
    def test_ddl_bumps_version_and_orphans_old_keys(self, small_catalog,
                                                    stores_table):
        engine = _engine(small_catalog, 0.25)
        engine.execute_sql(GROUPBY_SQL, query_id="q1")
        version = small_catalog.version
        small_catalog.drop(stores_table.name)
        try:
            assert small_catalog.version == version + 1
            # Old entries are unreachable (keys carry the old version);
            # a rerun misses, reinserts under the new version, no hits
            # against stale entries.
            hits_before = sum(s["hits"] for s in engine.cache_stats())
            engine.execute_sql(GROUPBY_SQL, query_id="q2")
            hits_after = sum(s["hits"] for s in engine.cache_stats())
            assert hits_after == hits_before
        finally:
            small_catalog.register(stores_table)


@pytest.mark.chaos
class TestChaos:
    def test_device_loss_mid_workload_invalidates_cleanly(self,
                                                          small_catalog):
        # One device: query 1 warms the cache, query 2's launch kills the
        # device — its entries must be dropped wholesale and the query
        # must still answer correctly from the CPU.
        plan = FaultPlan.parse("device_loss@0:nth=2")
        engine = _engine(small_catalog, 0.25, faults=plan,
                         gpus=(GpuSpec(),))
        cpu = BluEngine(small_catalog)
        r1 = engine.execute_sql(GROUPBY_SQL, query_id="c1")
        device = engine.devices[0]
        assert len(device.cache) > 0          # warmed
        r2 = engine.execute_sql(GROUPBY_SQL, query_id="c2")
        assert not device.alive
        assert len(device.cache) == 0
        assert device.cache.stats()["invalidations"] == 1
        assert device.memory.reserved == 0    # reservations returned
        expected = cpu.execute_sql(GROUPBY_SQL).table
        assert tables_equal(r1.table, expected)
        assert tables_equal(r2.table, expected)

    def test_alloc_faults_fail_inserts_cleanly(self, small_catalog):
        # The device-memory "alloc" seam is only crossed by cache
        # inserts: with it failing 100% of the time the cache must stay
        # empty (no half-materialised entries), queries keep offloading,
        # and results stay bit-identical.
        plan = FaultPlan.parse("alloc:p=1.0")
        engine = _engine(small_catalog, 0.25, faults=plan)
        cpu = BluEngine(small_catalog)
        result = engine.execute_sql(GROUPBY_SQL, query_id="a1")
        engine.execute_sql(GROUPBY_SQL, query_id="a2")
        stats = engine.cache_stats()
        assert sum(s["insert_failures"] for s in stats) > 0
        assert sum(s["entries"] for s in stats) == 0
        assert sum(s["cached_bytes"] for s in stats) == 0
        for device in engine.devices:
            assert device.memory.reserved == 0
        assert tables_equal(result.table,
                            cpu.execute_sql(GROUPBY_SQL).table)


class TestCacheStateParity:
    @settings(max_examples=6, deadline=None)
    @given(fraction=st.floats(min_value=0.01, max_value=0.99),
           repeats=st.integers(min_value=1, max_value=3))
    def test_any_cache_state_bit_identical_to_uncached(
            self, fraction, repeats, small_catalog):
        """Property: caching is invisible to results.

        Whatever cache fraction and whatever hit/evict state repeated
        execution builds up, every result must be bit-identical to the
        cache-disabled engine's.
        """
        cached = _engine(small_catalog, fraction)
        uncached = _engine(small_catalog, 0.0)
        for sql in (GROUPBY_SQL, SORT_SQL):
            for i in range(repeats):
                got = cached.execute_sql(sql, query_id=f"h{i}")
                want = uncached.execute_sql(sql, query_id=f"h{i}")
                assert tables_equal(got.table, want.table)
