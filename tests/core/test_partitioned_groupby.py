"""Tests for the partitioned large-group-by extension (T3 overflow path)."""

import dataclasses

import pytest

from repro.blu import BluEngine
from repro.config import paper_testbed
from repro.core import GpuAcceleratedEngine


BIG_SQL = ("SELECT s_item, SUM(s_qty) AS q, SUM(s_paid) AS paid, "
           "COUNT(*) AS c FROM sales GROUP BY s_item ORDER BY q DESC")


def make_engine(small_catalog, t3: int, partition: bool):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=1000,
                                     t3_max_rows=t3, sort_min_rows=10**9)
    config = dataclasses.replace(config, thresholds=thresholds)
    return GpuAcceleratedEngine(small_catalog, config=config,
                                partition_large_groupby=partition)


def sorted_dict(table):
    d = table.to_pydict()
    order = sorted(range(len(d["s_item"])), key=lambda i: d["s_item"][i])
    return {k: [v[i] for i in order] for k, v in d.items()}


class TestPartitionedGroupBy:
    def test_matches_cpu_results(self, small_catalog):
        engine = make_engine(small_catalog, t3=20_000, partition=True)
        cpu = BluEngine(small_catalog)
        gpu_result = engine.execute_sql(BIG_SQL, query_id="pg1")
        cpu_result = cpu.execute_sql(BIG_SQL)
        # The partitioned path may order equal sort keys differently;
        # compare group contents keyed by the grouping column.
        assert sorted_dict(gpu_result.table) == \
            pytest.approx(sorted_dict(cpu_result.table))

    def test_emits_multiple_gpu_events(self, small_catalog):
        engine = make_engine(small_catalog, t3=20_000, partition=True)
        result = engine.execute_sql(BIG_SQL, query_id="pg2")
        gpu_events = [e for e in result.profile.events
                      if e.op == "GPU-GROUPBY"]
        assert len(gpu_events) >= 3          # 50k rows / 20k per partition
        assert any(e.op == "PARTITION" for e in result.profile.events)
        decisions = engine.monitor.decisions_for("pg2")
        assert any(d.path == "gpu-partitioned" for d in decisions)

    def test_partitions_spread_across_devices(self, small_catalog):
        engine = make_engine(small_catalog, t3=10_000, partition=True)
        result = engine.execute_sql(BIG_SQL)
        devices = {e.device_id for e in result.profile.events
                   if e.op == "GPU-GROUPBY"}
        assert len(devices) >= 1             # leases rotate; memory released
        for device in engine.devices:
            assert device.memory.reserved == 0

    def test_disabled_falls_back_to_cpu_large(self, small_catalog):
        engine = make_engine(small_catalog, t3=20_000, partition=False)
        result = engine.execute_sql(BIG_SQL, query_id="pg3")
        assert not result.profile.offloaded
        decisions = engine.monitor.decisions_for("pg3")
        assert decisions[0].path == "cpu-large"

    def test_below_t3_uses_single_kernel(self, small_catalog):
        engine = make_engine(small_catalog, t3=10**7, partition=True)
        result = engine.execute_sql(BIG_SQL)
        gpu_events = [e for e in result.profile.events
                      if e.op == "GPU-GROUPBY"]
        assert len(gpu_events) == 1
