"""Integration tests for the hybrid job-queue sort (section 3)."""


import numpy as np
import pytest

from repro.blu import BluEngine
from repro.blu.plan import SortKey
from repro.blu.table import Schema, Table
from repro.blu.datatypes import float64, int32, int64, varchar
from repro.core.hybrid_sort import (
    encode_sort_keys,
    extract_partial_keys,
)
from tests.conftest import tables_equal


class TestKeyEncoding:
    def _order_via_bytes(self, table, keys):
        encoded = encode_sort_keys(table, keys)
        view = [tuple(row) for row in encoded]
        return sorted(range(len(view)), key=lambda i: (view[i], i))

    def test_int_encoding_preserves_order(self):
        t = Table.from_pydict("t", Schema.of(("v", int64())),
                              {"v": [5, -3, 0, 2**40, -(2**40), 7]})
        order = self._order_via_bytes(t, [SortKey("v")])
        values = [t.to_pydict()["v"][i] for i in order]
        assert values == sorted(values)

    def test_float_encoding_preserves_order(self):
        t = Table.from_pydict("t", Schema.of(("f", float64())),
                              {"f": [1.5, -2.25, 0.0, -0.0, 3e300, -3e300]})
        order = self._order_via_bytes(t, [SortKey("f")])
        values = [t.to_pydict()["f"][i] for i in order]
        assert values == sorted(values)

    def test_descending_complements_bytes(self):
        t = Table.from_pydict("t", Schema.of(("v", int32())),
                              {"v": [1, 5, 3]})
        order = self._order_via_bytes(t, [SortKey("v", ascending=False)])
        values = [t.to_pydict()["v"][i] for i in order]
        assert values == [5, 3, 1]

    def test_string_encoding_follows_collation(self):
        t = Table.from_pydict("t", Schema.of(("s", varchar(8))),
                              {"s": ["pear", "apple", "fig", "apple"]})
        order = self._order_via_bytes(t, [SortKey("s")])
        values = [t.to_pydict()["s"][i] for i in order]
        assert values == sorted(values)

    def test_partial_key_extraction_pads_past_end(self):
        t = Table.from_pydict("t", Schema.of(("v", int32())),
                              {"v": [1, 2]})
        encoded = encode_sort_keys(t, [SortKey("v")])
        partial = extract_partial_keys(encoded, np.array([0, 1]), offset=8)
        assert list(partial) == [0, 0]           # fully past the key bytes


class TestHybridSortExecution:
    @pytest.mark.parametrize("order_by", [
        "ORDER BY s_paid DESC",
        "ORDER BY s_item, s_qty DESC",
        "ORDER BY s_channel, s_paid DESC",
        "ORDER BY s_ticket",
        "ORDER BY s_store, s_channel, s_item, s_qty, s_paid",
    ])
    def test_matches_cpu_sort(self, order_by, gpu_engine, small_catalog):
        sql = f"SELECT s_item, s_store, s_qty, s_paid, s_ticket, s_channel " \
              f"FROM sales {order_by}"
        cpu = BluEngine(small_catalog)
        gpu_result = gpu_engine.execute_sql(sql)
        cpu_result = cpu.execute_sql(sql)
        assert tables_equal(gpu_result.table, cpu_result.table)

    def test_large_sort_uses_gpu_jobs(self, gpu_engine):
        result = gpu_engine.execute_sql(
            "SELECT s_ticket, s_paid FROM sales ORDER BY s_paid DESC",
            query_id="bigsort")
        assert any(e.op == "GPU-SORT" for e in result.profile.events)
        stats = gpu_engine._sort.last_stats
        assert stats.jobs_gpu >= 1

    def test_duplicate_ranges_spawn_followup_jobs(self, gpu_engine):
        """Sorting on a low-cardinality leading key forces duplicate-range
        jobs on the next 4 key bytes."""
        result = gpu_engine.execute_sql(
            "SELECT s_store, s_ticket FROM sales "
            "ORDER BY s_store, s_ticket", query_id="dupsort")
        stats = gpu_engine._sort.last_stats
        assert stats.duplicate_jobs >= 1
        assert stats.jobs_total > 1
        # Verify full ordering.
        d = result.table.to_pydict()
        pairs = list(zip(d["s_store"], d["s_ticket"]))
        assert pairs == sorted(pairs)

    def test_small_jobs_stay_on_cpu(self, gpu_engine):
        gpu_engine.execute_sql(
            "SELECT s_paid, s_ticket FROM sales WHERE s_item < 250 "
            "ORDER BY s_paid, s_ticket", query_id="mixed")
        stats = gpu_engine._sort.last_stats
        # A duplicate-range generation too small to batch into one
        # segmented launch degrades to per-range CPU jobs.
        assert stats.jobs_cpu >= 1
        assert stats.jobs_gpu >= 1

    def test_duplicate_generations_batch_into_segmented_jobs(
            self, gpu_engine):
        """A low-cardinality leading key leaves hundreds of duplicate
        ranges; they sort as one segmented device job per generation,
        not one launch (or one CPU job) per range."""
        gpu_engine.execute_sql(
            "SELECT s_store, s_ticket FROM sales "
            "ORDER BY s_store, s_ticket", query_id="segsort")
        stats = gpu_engine._sort.last_stats
        assert stats.duplicate_jobs > stats.jobs_total
        assert stats.jobs_cpu == 0
        assert stats.jobs_gpu >= 2

    def test_tiny_sort_never_offloads(self, gpu_engine):
        result = gpu_engine.execute_sql(
            "SELECT s_item FROM sales WHERE s_store = 3 AND s_item < 50 "
            "ORDER BY s_item", query_id="tinysort")
        assert not any(e.op == "GPU-SORT" for e in result.profile.events)

    def test_merge_free_partitioning(self, gpu_engine):
        """No merge events ever appear: duplicate-range jobs own disjoint
        slices ('we remove the merging step')."""
        result = gpu_engine.execute_sql(
            "SELECT s_channel, s_qty FROM sales ORDER BY s_channel, s_qty")
        ops = [e.op for e in result.profile.events]
        assert "MERGE" not in ops
