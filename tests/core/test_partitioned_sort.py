"""Tests for out-of-core partitioned sort (over-memory ORDER BY)."""

import dataclasses

from repro.blu import BluEngine
from repro.config import GpuSpec, paper_testbed
from repro.core import GpuAcceleratedEngine

SORT_SQL = "SELECT s_item, s_ticket FROM sales ORDER BY s_item"


def make_engine(small_catalog, device_bytes, partition=True):
    """Two small cards so slices stream across devices; group-by offload
    is left at paper defaults (this query has none)."""
    config = paper_testbed()
    card = dataclasses.replace(GpuSpec(), device_memory_bytes=device_bytes)
    thresholds = dataclasses.replace(config.thresholds,
                                     sort_min_rows=1000)
    config = dataclasses.replace(config, gpus=(card, card),
                                 thresholds=thresholds,
                                 partition_enabled=partition)
    return GpuAcceleratedEngine(small_catalog, config=config)


def cpu_table(small_catalog):
    return BluEngine(small_catalog).execute_sql(SORT_SQL).table.to_pydict()


class TestPartitionedSort:
    def test_over_memory_sort_splits_and_matches_cpu_exactly(
            self, small_catalog):
        """50k rows need ~800 KB of device memory; a 256 KB card forces
        4 slices.  The stable k-way merge must reproduce the CPU's
        stable sort byte-for-byte (ties included: s_ticket is unique
        and in row order, so any instability would show)."""
        engine = make_engine(small_catalog, device_bytes=256 * 1024)
        result = engine.execute_sql(SORT_SQL, query_id="ps1")
        gpu_sorts = [e for e in result.profile.events if e.op == "GPU-SORT"]
        assert len(gpu_sorts) >= 2
        assert any(e.op == "SORT-MERGE" for e in result.profile.events)
        decisions = engine.monitor.decisions_for("ps1")
        assert any(d.path == "gpu-partitioned" for d in decisions)
        assert result.table.to_pydict() == cpu_table(small_catalog)

    def test_slices_release_device_memory(self, small_catalog):
        engine = make_engine(small_catalog, device_bytes=256 * 1024)
        engine.execute_sql(SORT_SQL)
        for device in engine.devices:
            assert device.memory.reserved == 0

    def test_declines_to_cpu_when_no_slice_fits(self, small_catalog):
        """A 1 KB card cannot hold even a max_partitions slice; the sort
        stays on the CPU and is still exact."""
        engine = make_engine(small_catalog, device_bytes=1024)
        result = engine.execute_sql(SORT_SQL, query_id="ps2")
        assert not any(e.op == "GPU-SORT" for e in result.profile.events)
        assert result.table.to_pydict() == cpu_table(small_catalog)

    def test_knob_off_keeps_cpu_fallback(self, small_catalog):
        engine = make_engine(small_catalog, device_bytes=256 * 1024,
                             partition=False)
        result = engine.execute_sql(SORT_SQL, query_id="ps3")
        assert not any(e.op == "GPU-SORT" for e in result.profile.events)
        assert not any(e.op == "SORT-MERGE"
                       for e in result.profile.events)
        assert result.table.to_pydict() == cpu_table(small_catalog)
