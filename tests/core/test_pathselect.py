"""Unit tests for Figure-3 path selection."""

import pytest

from repro.config import Thresholds
from repro.core.pathselect import (
    ExecutionPath,
    select_groupby_path,
    select_sort_offload,
)


@pytest.fixture()
def thresholds():
    return Thresholds(t1_min_rows=1000, t2_min_groups=8,
                      t3_max_rows=1_000_000, sort_min_rows=1000)


class TestGroupByRouting:
    def test_small_rows_stay_on_cpu(self, thresholds):
        decision = select_groupby_path(500, 100, thresholds)
        assert decision.path is ExecutionPath.CPU_SMALL
        assert not decision.use_gpu
        assert "T1" in decision.reason

    def test_tiny_group_counts_stay_on_cpu(self, thresholds):
        decision = select_groupby_path(50_000, 3, thresholds)
        assert decision.path is ExecutionPath.CPU_SMALL
        assert "T2" in decision.reason

    def test_sweet_spot_goes_to_gpu(self, thresholds):
        decision = select_groupby_path(50_000, 500, thresholds)
        assert decision.path is ExecutionPath.GPU
        assert decision.use_gpu

    def test_oversized_goes_back_to_cpu(self, thresholds):
        decision = select_groupby_path(2_000_000, 10_000, thresholds)
        assert decision.path is ExecutionPath.CPU_LARGE
        assert "T3" in decision.reason

    def test_boundaries_inclusive(self, thresholds):
        at_t1 = select_groupby_path(1000, 100, thresholds)
        assert at_t1.path is ExecutionPath.GPU
        at_t2 = select_groupby_path(50_000, 8, thresholds)
        assert at_t2.path is ExecutionPath.GPU
        at_t3 = select_groupby_path(1_000_000, 100, thresholds)
        assert at_t3.path is ExecutionPath.GPU

    def test_t3_checked_before_t1(self, thresholds):
        """An enormous input routes to CPU_LARGE even with many groups."""
        decision = select_groupby_path(10**9, 10**6, thresholds)
        assert decision.path is ExecutionPath.CPU_LARGE


class TestSortRouting:
    def test_threshold(self, thresholds):
        assert not select_sort_offload(999, thresholds)
        assert select_sort_offload(1000, thresholds)
        assert select_sort_offload(10**6, thresholds)
