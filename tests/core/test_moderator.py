"""Unit tests for the GPU moderator: kernel choice, racing, learning."""

import numpy as np
import pytest

from repro.blu.datatypes import int64
from repro.blu.expressions import AggFunc
from repro.config import CostModel, Thresholds
from repro.core.metadata import RuntimeMetadata
from repro.core.moderator import GpuModerator, LearningModerator
from repro.gpu.kernels.request import GroupByRequest, PayloadSpec


@pytest.fixture()
def moderator():
    return GpuModerator(CostModel(), Thresholds())


def metadata(rows=200_000, groups=5000, num_aggs=2):
    return RuntimeMetadata(
        rows=rows, optimizer_groups=float(groups), kmv_groups=groups,
        payloads=[PayloadSpec(int64(), AggFunc.SUM)] * num_aggs,
    )


def request_for(meta, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, meta.estimated_groups, meta.rows).astype(np.int64)
    return GroupByRequest(keys=keys, key_bits=meta.key_bits,
                          payloads=meta.payloads,
                          estimated_groups=meta.estimated_groups)


class TestChoice:
    def test_small_groups_pick_shared_kernel(self, moderator):
        kernel, reason = moderator.choose(metadata(groups=12))
        assert kernel.name == "groupby_shared"
        assert "shared memory" in reason

    def test_many_aggs_pick_biglock(self, moderator):
        kernel, reason = moderator.choose(metadata(num_aggs=7))
        assert kernel.name == "groupby_biglock"

    def test_regular_default(self, moderator):
        kernel, _ = moderator.choose(metadata(groups=5000, num_aggs=2))
        assert kernel.name == "groupby_regular"

    def test_low_contention_many_aggs_pick_biglock(self, moderator):
        meta = metadata(rows=12_000, groups=6000, num_aggs=5)
        kernel, _ = moderator.choose(meta)
        assert kernel.name == "groupby_biglock"

    def test_wide_entries_exclude_shared_kernel(self, moderator):
        """Few groups but a huge entry cannot fit 48 KB shared memory."""
        meta = RuntimeMetadata(
            rows=200_000, optimizer_groups=900.0, kmv_groups=900,
            payloads=[PayloadSpec(int64(), AggFunc.SUM)] * 12,
        )
        kernel, _ = moderator.choose(meta)
        assert kernel.name != "groupby_shared"

    def test_decisions_logged(self, moderator):
        moderator.choose(metadata())
        moderator.choose(metadata(groups=12))
        assert len(moderator.decisions) == 2


class TestRun:
    def test_single_run_matches_choice(self, moderator):
        meta = metadata(groups=300)
        outcome = moderator.run(request_for(meta), meta, race=False)
        assert outcome.winner.kernel == "groupby_shared"
        assert not outcome.raced
        assert outcome.winner.n_groups == 300

    def test_regrow_on_bad_estimate(self, moderator):
        """The estimate said 3000 groups, reality has ~60000: the error
        path grows the table, retries, and charges the wasted attempt.
        (3000 routes to the regular kernel — the shared kernel absorbs
        bad estimates through flushes instead.)"""
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 60_000, 200_000).astype(np.int64)
        true_groups = len(np.unique(keys))
        meta = RuntimeMetadata(
            rows=200_000, optimizer_groups=3000.0, kmv_groups=3000,
            payloads=[PayloadSpec(int64(), AggFunc.SUM)],
        )
        request = GroupByRequest(keys=keys, key_bits=64,
                                 payloads=meta.payloads,
                                 estimated_groups=3000)
        outcome = moderator.run(request, meta, race=False)
        assert outcome.winner.n_groups == true_groups
        assert outcome.wasted_device_seconds > 0

    def test_race_returns_fastest(self, moderator):
        meta = metadata(groups=12, num_aggs=1)
        outcome = moderator.run(request_for(meta), meta, race=True)
        assert outcome.raced
        assert outcome.winner.kernel == "groupby_shared"
        assert set(outcome.cancelled) == {"groupby_regular",
                                          "groupby_biglock"}
        assert outcome.wasted_device_seconds > 0

    def test_race_counts_cancelled_occupancy(self, moderator):
        meta = metadata(groups=2000, num_aggs=2)
        outcome = moderator.run(request_for(meta), meta, race=True)
        # Each cancelled kernel occupied the device for at most the
        # winner's duration.
        assert outcome.wasted_device_seconds <= \
            len(outcome.cancelled) * outcome.winner.kernel_seconds + 1e-12


class TestLearningModerator:
    def test_explores_then_exploits(self):
        moderator = LearningModerator(CostModel(), Thresholds())
        meta = metadata(groups=5000, num_aggs=2)
        seen = []
        for i in range(6):
            outcome = moderator.run(request_for(meta, seed=i), meta)
            seen.append(outcome.winner.kernel)
        # Exploration tries both global-table kernels...
        assert {"groupby_regular", "groupby_biglock"} <= set(seen)
        # ...then settles on the regular kernel (fastest at 2 aggs).
        assert seen[-1] == "groupby_regular"
        assert seen[-2] == "groupby_regular"

    def test_buckets_isolate_query_shapes(self):
        moderator = LearningModerator(CostModel(), Thresholds())
        a = metadata(rows=200_000, groups=5000)
        b = metadata(rows=2_000, groups=50)
        assert moderator.bucket_of(a) != moderator.bucket_of(b)
