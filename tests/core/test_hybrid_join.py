"""Tests for the GPU join extension (the paper's future-work item)."""

import dataclasses

import numpy as np
import pytest

from repro.blu import BluEngine
from repro.config import CostModel, GpuSpec, paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.errors import GpuError
from repro.gpu.kernels.join import HashJoinKernel
from tests.conftest import tables_equal


JOIN_SQL = ("SELECT st_state, SUM(s_paid) AS rev, COUNT(*) AS c "
            "FROM sales JOIN stores ON s_store = st_id "
            "GROUP BY st_state ORDER BY rev DESC")


@pytest.fixture()
def join_engine(small_catalog):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     sort_min_rows=5_000)
    config = dataclasses.replace(config, thresholds=thresholds)
    return GpuAcceleratedEngine(small_catalog, config=config,
                                enable_join_offload=True)


class TestJoinKernel:
    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(31)
        build = np.arange(1, 501, dtype=np.int64)
        probe = rng.integers(1, 701, 50_000).astype(np.int64)
        result = HashJoinKernel(CostModel()).run(build, probe)
        expected_matches = int((probe <= 500).sum())
        assert len(result.left_idx) == expected_matches
        # Every matched pair really joins.
        assert np.array_equal(probe[result.left_idx],
                              build[result.right_idx])
        # Misses really miss.
        missed = np.setdiff1d(np.arange(len(probe)), result.left_idx)
        assert (probe[missed] > 500).all()

    def test_probe_order_preserved(self):
        build = np.array([10, 20, 30], dtype=np.int64)
        probe = np.array([20, 99, 10, 30, 20], dtype=np.int64)
        result = HashJoinKernel(CostModel()).run(build, probe)
        assert list(result.left_idx) == [0, 2, 3, 4]
        assert list(build[result.right_idx]) == [20, 10, 30, 20]

    def test_duplicate_build_keys_rejected(self):
        with pytest.raises(GpuError):
            HashJoinKernel(CostModel()).run(
                np.array([1, 1, 2], dtype=np.int64),
                np.array([1], dtype=np.int64))

    def test_cost_scales_with_probe_side(self):
        kernel = HashJoinKernel(CostModel())
        build = np.arange(1000, dtype=np.int64)
        small = kernel.run(build, np.arange(10_000, dtype=np.int64) % 1000)
        large = kernel.run(build, np.arange(200_000, dtype=np.int64) % 1000)
        assert large.kernel_seconds > 5 * small.kernel_seconds

    def test_stats(self):
        kernel = HashJoinKernel(CostModel())
        result = kernel.run(np.arange(100, dtype=np.int64),
                            np.arange(200, dtype=np.int64))
        assert result.stats["matches"] == 100
        assert result.table_bytes > 0


class TestHybridJoinExecutor:
    def test_offloaded_join_matches_cpu(self, join_engine, small_catalog):
        cpu = BluEngine(small_catalog)
        gpu_result = join_engine.execute_sql(JOIN_SQL, query_id="j1")
        cpu_result = cpu.execute_sql(JOIN_SQL)
        assert tables_equal(gpu_result.table, cpu_result.table)
        assert any(e.op == "GPU-JOIN" for e in gpu_result.profile.events)
        decisions = [d for d in join_engine.monitor.decisions_for("j1")
                     if d.operator == "join"]
        assert decisions and decisions[0].path == "gpu"

    def test_small_probe_stays_on_cpu(self, join_engine):
        result = join_engine.execute_sql(
            "SELECT st_state, COUNT(*) AS c FROM sales "
            "JOIN stores ON s_store = st_id "
            "WHERE s_item = 3 GROUP BY st_state", query_id="j2")
        assert not any(e.op == "GPU-JOIN" for e in result.profile.events)

    def test_disabled_by_default(self, gpu_engine):
        result = gpu_engine.execute_sql(JOIN_SQL)
        assert not any(e.op == "GPU-JOIN" for e in result.profile.events)

    def test_reservation_failure_falls_back(self, small_catalog):
        config = paper_testbed()
        tiny = dataclasses.replace(GpuSpec(), device_memory_bytes=32 * 1024)
        thresholds = dataclasses.replace(config.thresholds,
                                         t1_min_rows=1000,
                                         sort_min_rows=10**9)
        config = dataclasses.replace(config, gpus=(tiny,),
                                     thresholds=thresholds)
        engine = GpuAcceleratedEngine(small_catalog, config=config,
                                      enable_join_offload=True)
        cpu = BluEngine(small_catalog)
        gpu_result = engine.execute_sql(JOIN_SQL, query_id="j3")
        assert not any(e.op == "GPU-JOIN"
                       for e in gpu_result.profile.events)
        assert tables_equal(gpu_result.table,
                            cpu.execute_sql(JOIN_SQL).table)

    def test_memory_released(self, join_engine):
        join_engine.execute_sql(JOIN_SQL)
        for device in join_engine.devices:
            # Query-scoped reservations are gone; only column-cache
            # entries (tag="cache") may remain resident.
            assert all(r.tag == "cache"
                       for r in device.memory.live_reservations)
            cached = device.cache.cached_bytes if device.cache else 0
            assert device.memory.reserved == cached
        assert join_engine.pinned.used == 0
