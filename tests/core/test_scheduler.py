"""Unit tests for the multi-GPU scheduler (section 2.2)."""

import dataclasses

import pytest

from repro.config import GpuSpec
from repro.errors import SchedulerError
from repro.core.scheduler import MultiGpuScheduler
from repro.gpu.device import make_devices


def make_scheduler(memories=(1000, 1000)):
    specs = [dataclasses.replace(GpuSpec(), device_memory_bytes=m)
             for m in memories]
    return MultiGpuScheduler(make_devices(specs))


class TestAcquire:
    def test_lease_reserves_and_counts_job(self):
        scheduler = make_scheduler()
        lease = scheduler.try_acquire(400, tag="q1")
        assert lease is not None
        assert lease.device.outstanding_jobs == 1
        assert lease.device.memory.reserved == 400
        scheduler.release(lease)
        assert lease.device.outstanding_jobs == 0
        assert lease.device.memory.reserved == 0

    def test_balances_by_outstanding_jobs(self):
        scheduler = make_scheduler()
        l1 = scheduler.try_acquire(100)
        l2 = scheduler.try_acquire(100)
        assert l1.device.device_id != l2.device.device_id

    def test_skips_full_device(self):
        scheduler = make_scheduler()
        big = scheduler.try_acquire(900)
        next_lease = scheduler.try_acquire(900)
        assert next_lease.device.device_id != big.device.device_id
        assert scheduler.try_acquire(900) is None    # both busy now

    def test_heterogeneous_devices(self):
        """Devices 'do not need to be homogeneous in their specifications'."""
        scheduler = make_scheduler(memories=(500, 4000))
        lease = scheduler.try_acquire(2000)
        assert lease.device.device_id == 1

    def test_hopeless_request_returns_none(self):
        """"No device" — even permanently — is not an error (the caller
        falls back to the CPU); only misuse raises."""
        scheduler = make_scheduler(memories=(100,))
        assert scheduler.try_acquire(5000) is None
        with pytest.raises(SchedulerError):
            scheduler.try_acquire(-1)

    def test_grant_and_rejection_counters(self):
        scheduler = make_scheduler(memories=(100, 100))
        scheduler.try_acquire(50)
        scheduler.try_acquire(500)
        assert scheduler.grants == 1
        assert scheduler.rejections == 1

    def test_no_devices(self):
        scheduler = MultiGpuScheduler([])
        assert scheduler.try_acquire(1) is None
        assert scheduler.device_count == 0


class TestLifecycle:
    def test_double_release_rejected(self):
        scheduler = make_scheduler()
        lease = scheduler.try_acquire(10)
        scheduler.release(lease)
        with pytest.raises(SchedulerError):
            scheduler.release(lease)

    def test_fits_any_device(self):
        scheduler = make_scheduler(memories=(100, 2000))
        assert scheduler.fits_any_device(1500)
        assert not scheduler.fits_any_device(5000)

    def test_snapshot(self):
        scheduler = make_scheduler()
        scheduler.try_acquire(250)
        snap = scheduler.snapshot()
        assert len(snap) == 2
        total_jobs = sum(s["outstanding_jobs"] for s in snap)
        assert total_jobs == 1
        assert any(s["free_bytes"] == 750 for s in snap)


def _quarantine(scheduler, device_id: int) -> None:
    """Trip ``device_id``'s breaker through the public feed."""
    while not scheduler.breakers[device_id].quarantined:
        lease = scheduler.try_acquire(1, prefer_device=device_id)
        assert lease.device.device_id == device_id
        scheduler.record_failure(lease)
        scheduler.release(lease)


class TestDegradedScreening:
    """``fits_any_device`` must apply the same admissibility filter as
    ``try_acquire`` — a lost or quarantined device's capacity is not a
    promise the acquire path can keep."""

    def test_fits_any_device_ignores_lost_devices(self):
        scheduler = make_scheduler(memories=(100, 2000))
        assert scheduler.fits_any_device(1500)
        scheduler.devices[1].alive = False
        assert not scheduler.fits_any_device(1500)
        assert scheduler.try_acquire(1500) is None   # the screen agrees
        assert scheduler.fits_any_device(50)         # device 0 still counts

    def test_fits_any_device_ignores_quarantined_devices(self):
        scheduler = make_scheduler(memories=(100, 2000))
        _quarantine(scheduler, 1)
        # The screen and the acquire path must give the same verdict
        # while the big device sits in quarantine.
        assert not scheduler.fits_any_device(1500)
        assert scheduler.try_acquire(1500) is None

    def test_quarantined_device_readmits_after_cooldown(self):
        scheduler = make_scheduler(memories=(100, 2000))
        _quarantine(scheduler, 1)
        # Each acquire attempt ticks the breakers; after the cooldown the
        # half-open probe readmits the device to both surfaces at once.
        for _ in range(64):
            if scheduler.fits_any_device(1500):
                break
            scheduler.try_acquire(50)
        assert scheduler.fits_any_device(1500)
        lease = scheduler.try_acquire(1500)
        assert lease is not None and lease.device.device_id == 1

    def test_healthy_device_ids_tracks_degradation(self):
        scheduler = make_scheduler(memories=(1000, 1000, 1000))
        assert scheduler.healthy_device_ids() == [0, 1, 2]
        scheduler.devices[0].alive = False
        _quarantine(scheduler, 2)
        assert scheduler.healthy_device_ids() == [1]


class TestPreferDevice:
    def test_prefer_device_pins_home_shard(self):
        scheduler = make_scheduler(memories=(1000, 1000))
        # Load device 1 so the stock ranking would pick device 0.
        held = scheduler.try_acquire(600, prefer_device=1)
        assert held.device.device_id == 1
        lease = scheduler.try_acquire(100, prefer_device=1)
        assert lease.device.device_id == 1   # pin outranks load

    def test_prefer_device_is_a_preference_not_a_requirement(self):
        scheduler = make_scheduler(memories=(1000, 1000))
        scheduler.devices[1].alive = False
        lease = scheduler.try_acquire(100, prefer_device=1)
        assert lease is not None
        assert lease.device.device_id == 0   # reroutes off the dead home
