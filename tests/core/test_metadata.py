"""Unit tests for the runtime metadata record (section 4.2)."""

import pytest

from repro.blu.datatypes import int64
from repro.blu.expressions import AggFunc
from repro.core.metadata import RuntimeMetadata
from repro.gpu.kernels.request import PayloadSpec


def make(rows=100_000, optimizer=500.0, kmv=None, num_aggs=2, num_keys=1):
    return RuntimeMetadata(
        rows=rows, optimizer_groups=optimizer, kmv_groups=kmv,
        num_keys=num_keys,
        payloads=[PayloadSpec(int64(), AggFunc.SUM)] * num_aggs,
    )


class TestEstimatePrecedence:
    def test_kmv_beats_optimizer(self):
        assert make(optimizer=500.0, kmv=720).estimated_groups == 720

    def test_optimizer_when_no_kmv(self):
        assert make(optimizer=500.0, kmv=None).estimated_groups == 500

    def test_rows_when_nothing_known(self):
        """No estimate -> size at rows, 'much larger than number of groups
        in most queries' — the case the metadata plumbing avoids."""
        metadata = make(optimizer=0.0, kmv=None)
        assert metadata.estimated_groups == metadata.rows

    def test_estimate_never_below_one(self):
        assert make(optimizer=0.3, kmv=None).estimated_groups == 1


class TestDerived:
    def test_rows_per_group(self):
        metadata = make(rows=10_000, kmv=100)
        assert metadata.rows_per_group == pytest.approx(100.0)

    def test_staged_bytes_scale_with_columns(self):
        thin = make(num_aggs=1, num_keys=1)
        wide = make(num_aggs=6, num_keys=3)
        assert wide.staged_input_bytes() > 3 * thin.staged_input_bytes()
        assert thin.staged_input_bytes() == thin.rows * 4 * 2

    def test_result_bytes_scale_with_groups(self):
        small = make(kmv=10)
        large = make(kmv=100_000)
        assert large.result_bytes() > 1000 * small.result_bytes()

    def test_num_aggs(self):
        assert make(num_aggs=4).num_aggs == 4
