"""Unit tests for the integrated performance monitor (section 2.3)."""

import pytest

from repro.config import GpuSpec
from repro.core.monitoring import (
    OffloadDecision,
    PerformanceMonitor,
)
from repro.gpu.device import GpuDevice
from repro.timing import CostEvent, QueryProfile


def profile(qid="q", cpu=1.0, gpu=0.0):
    return QueryProfile(qid, gpu_enabled=gpu > 0, events=[
        CostEvent(op="SCAN", cpu_seconds=cpu, max_degree=24),
        CostEvent(op="GPU-GROUPBY", gpu_seconds=gpu, max_degree=1,
                  gpu_memory_bytes=1024, device_id=0),
    ])


class TestRecording:
    def test_counters_follow_decisions(self):
        monitor = PerformanceMonitor()
        for path in ("gpu", "gpu", "cpu-small", "cpu-large", "cpu-fallback"):
            monitor.record_decision(OffloadDecision(
                query_id="q", operator="groupby", path=path, reason=""))
        c = monitor.counters
        assert c.gpu_offloads == 2
        assert c.cpu_small == 1
        assert c.cpu_large == 1
        assert c.reservation_fallbacks == 1

    def test_race_counters_follow_outcomes(self):
        monitor = PerformanceMonitor()
        monitor.record_race(cancelled=("groupby_biglock",))
        monitor.record_race(cancelled=())
        c = monitor.counters
        assert c.kernels_raced == 2
        assert c.kernels_cancelled == 1

    def test_overflow_retries_counter(self):
        monitor = PerformanceMonitor()
        monitor.record_overflow_retries(2)
        monitor.record_overflow_retries(0)      # no-op
        monitor.record_overflow_retries(1)
        assert monitor.counters.overflow_retries == 3

    def test_counters_proxy_is_registry_backed(self):
        monitor = PerformanceMonitor()
        c = monitor.counters
        c.kernels_raced += 1
        c.kernels_raced += 1
        assert c.kernels_raced == 2
        assert monitor.registry.get("repro_kernels_raced_total").value == 2
        with pytest.raises(AttributeError):
            c.no_such_counter

    def test_profiles_accumulate(self):
        monitor = PerformanceMonitor()
        monitor.record_profile(profile(cpu=2.0, gpu=0.5))
        monitor.record_profile(profile(cpu=1.0))
        assert monitor.total_cpu_core_seconds == pytest.approx(3.0)
        assert monitor.total_gpu_seconds == pytest.approx(0.5)

    def test_decisions_for_query(self):
        monitor = PerformanceMonitor()
        monitor.record_decision(OffloadDecision("a", "groupby", "gpu", ""))
        monitor.record_decision(OffloadDecision("b", "sort", "cpu-small", ""))
        assert len(monitor.decisions_for("a")) == 1
        assert monitor.decisions_for("a")[0].operator == "groupby"


class TestViews:
    def test_operator_breakdown_sums_across_queries(self):
        monitor = PerformanceMonitor()
        monitor.record_profile(profile(cpu=1.0, gpu=0.25))
        monitor.record_profile(profile(cpu=1.0, gpu=0.25))
        breakdown = monitor.operator_breakdown()
        assert breakdown["GPU-GROUPBY"] == pytest.approx(0.5)
        assert breakdown["SCAN"] > 0

    def test_report_renders_devices(self):
        device = GpuDevice(0, GpuSpec())
        r = device.memory.reserve(1 << 20)
        device.launch("groupby_regular", 0.001, r, rows=10, bytes_in=4096)
        device.memory.release(r)
        monitor = PerformanceMonitor([device])
        monitor.record_profile(profile())
        report = monitor.report()
        assert "performance monitor" in report
        assert "groupby_regular" in report
        assert "operator breakdown" in report

    def test_empty_report(self):
        assert "queries=0" in PerformanceMonitor().report()


class TestExportEvents:
    def test_export_covers_all_record_kinds(self):
        from repro.config import GpuSpec
        from repro.gpu.device import GpuDevice

        device = GpuDevice(0, GpuSpec())
        r = device.memory.reserve(1 << 20)
        device.launch("groupby_regular", 0.001, r, rows=10, bytes_in=4096)
        device.memory.release(r)
        monitor = PerformanceMonitor([device])
        monitor.record_profile(profile(cpu=1.0, gpu=0.25))
        monitor.record_decision(OffloadDecision("q", "groupby", "gpu", "r",
                                                kernel="groupby_regular",
                                                device_id=0))
        events = monitor.export_events()
        kinds = {e["kind"] for e in events}
        assert kinds == {"query", "decision", "kernel"}
        query = next(e for e in events if e["kind"] == "query")
        assert query["offloaded"]
        assert query["events"][1]["op"] == "GPU-GROUPBY"

    def test_export_is_json_serialisable(self):
        import json

        monitor = PerformanceMonitor()
        monitor.record_profile(profile())
        json.dumps(monitor.export_events())
