"""Edge-path coverage for the hybrid executors: resource exhaustion,
regrow limits, and fallback correctness."""

import dataclasses

import numpy as np
import pytest

from repro.blu import BluEngine
from repro.config import CostModel, GpuSpec, paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.core.moderator import _run_with_regrow
from repro.errors import HashTableOverflowError
from repro.gpu.kernels.groupby_regular import RegularGroupByKernel
from repro.gpu.kernels.request import GroupByRequest, PayloadSpec
from repro.blu.datatypes import int64
from repro.blu.expressions import AggFunc
from tests.conftest import tables_equal


GROUPBY_SQL = ("SELECT s_item, SUM(s_qty) AS q FROM sales GROUP BY s_item")
SORT_SQL = ("SELECT s_ticket, s_paid FROM sales ORDER BY s_paid DESC")


def engine_with(small_catalog, pinned_bytes=2 << 30, **config_overrides):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     sort_min_rows=5_000)
    config = dataclasses.replace(config, thresholds=thresholds,
                                 **config_overrides)
    return GpuAcceleratedEngine(small_catalog, config=config,
                                pinned_pool_bytes=pinned_bytes)


class TestPinnedExhaustion:
    def test_groupby_falls_back_when_pool_tiny(self, small_catalog):
        engine = engine_with(small_catalog, pinned_bytes=16 * 1024)
        cpu = BluEngine(small_catalog)
        result = engine.execute_sql(GROUPBY_SQL, query_id="pinned-gb")
        assert not result.profile.offloaded
        decisions = engine.monitor.decisions_for("pinned-gb")
        assert any("pinned" in d.reason for d in decisions)
        assert tables_equal(result.table, cpu.execute_sql(GROUPBY_SQL).table)

    def test_sort_falls_back_when_pool_tiny(self, small_catalog):
        engine = engine_with(small_catalog, pinned_bytes=16 * 1024)
        cpu = BluEngine(small_catalog)
        result = engine.execute_sql(SORT_SQL, query_id="pinned-sort")
        assert not any(e.op == "GPU-SORT" for e in result.profile.events)
        assert tables_equal(result.table, cpu.execute_sql(SORT_SQL).table)
        assert engine._sort.last_stats.fallbacks >= 1

    def test_pool_not_leaked_by_fallbacks(self, small_catalog):
        engine = engine_with(small_catalog, pinned_bytes=16 * 1024)
        for _ in range(3):
            engine.execute_sql(GROUPBY_SQL)
            engine.execute_sql(SORT_SQL)
        assert engine.pinned.used == 0


class TestRegrowExhaustion:
    def test_regrow_gives_up_after_max_attempts(self):
        """A pathological kernel that always overflows must terminate."""

        class AlwaysOverflow(RegularGroupByKernel):
            def run(self, request, headroom=1.5):
                raise HashTableOverflowError("synthetic")

        kernel = AlwaysOverflow(CostModel())
        request = GroupByRequest(
            keys=np.arange(100, dtype=np.int64), key_bits=64,
            payloads=[PayloadSpec(int64(), AggFunc.SUM)],
            estimated_groups=10)
        with pytest.raises(HashTableOverflowError, match="regrow"):
            _run_with_regrow(kernel, request, max_attempts=3)


class TestPartitionedFallbackMix:
    def test_partition_runs_on_cpu_when_devices_full(self, small_catalog):
        """With a device too small for any partition, the partitioned path
        degrades to per-partition CPU chains and still answers correctly."""
        config = paper_testbed()
        tiny = dataclasses.replace(GpuSpec(), device_memory_bytes=64 * 1024)
        thresholds = dataclasses.replace(config.thresholds,
                                         t1_min_rows=1000,
                                         t3_max_rows=20_000,
                                         sort_min_rows=10**9)
        config = dataclasses.replace(config, gpus=(tiny,),
                                     thresholds=thresholds)
        engine = GpuAcceleratedEngine(small_catalog, config=config,
                                      partition_large_groupby=True)
        cpu = BluEngine(small_catalog)
        result = engine.execute_sql(GROUPBY_SQL)
        ref = cpu.execute_sql(GROUPBY_SQL)
        got = sorted(zip(*result.table.to_pydict().values()))
        want = sorted(zip(*ref.table.to_pydict().values()))
        assert got == want
        assert not any(e.uses_gpu for e in result.profile.events)


class TestJoinKernelProbeEdges:
    def test_probe_absent_keys_in_nearly_full_table(self):
        from repro.gpu.kernels.join import HashJoinKernel

        kernel = HashJoinKernel(CostModel())
        build = np.arange(0, 1000, dtype=np.int64)
        probe = np.arange(2000, 3000, dtype=np.int64)    # all misses
        result = kernel.run(build, probe, headroom=1.05)
        assert len(result.left_idx) == 0

    def test_empty_probe(self):
        from repro.gpu.kernels.join import HashJoinKernel

        kernel = HashJoinKernel(CostModel())
        result = kernel.run(np.arange(10, dtype=np.int64),
                            np.empty(0, dtype=np.int64))
        assert len(result.left_idx) == 0
        assert result.kernel_seconds >= 0
