"""Unit tests for the closed-loop workload simulator."""

import dataclasses

import pytest

from repro.config import paper_testbed, cpu_only_testbed
from repro.sim import UserScript, WorkloadSimulator
from repro.timing import CostEvent, QueryProfile


def profile(qid, cpu=0.0, gpu=0.0, degree=24, mem=0):
    events = []
    if cpu:
        events.append(CostEvent(op="CPU", cpu_seconds=cpu,
                                max_degree=degree))
    if gpu:
        events.append(CostEvent(op="GPU", gpu_seconds=gpu,
                                gpu_memory_bytes=mem, max_degree=1))
    return QueryProfile(qid, gpu_enabled=gpu > 0, events=events)


class TestSerialBehaviour:
    def test_single_user_single_query(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript("u", [profile("q", cpu=24.0)])])
        assert result.makespan == pytest.approx(1.0)
        assert result.queries_completed == 1
        assert result.completions[0].elapsed == pytest.approx(1.0)

    def test_loops_repeat_queries(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript("u", [profile("q", cpu=24.0)],
                                     loops=3)])
        assert result.queries_completed == 3
        assert result.makespan == pytest.approx(3.0)

    def test_gpu_stage_serialises_after_cpu_stage(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript(
            "u", [profile("q", cpu=24.0, gpu=0.5, mem=1 << 20)])])
        assert result.makespan == pytest.approx(1.5)

    def test_zero_work_query(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript("u", [profile("empty")])])
        assert result.queries_completed == 1
        assert result.makespan == pytest.approx(0.0)


class TestContention:
    def test_two_users_share_cores(self):
        sim = WorkloadSimulator(paper_testbed())
        users = [UserScript(f"u{i}", [profile("q", cpu=24.0, degree=24)])
                 for i in range(2)]
        result = sim.run(users)
        # 48 core-seconds over eff(48) capacity.
        host = paper_testbed().host
        assert result.makespan == pytest.approx(
            48.0 / host.effective_capacity(48), rel=1e-6)

    def test_offload_frees_cpu_for_other_users(self):
        """The paper's central multi-user claim."""
        config = paper_testbed()
        work_cpu_only = [profile("q", cpu=24.0, degree=24)]
        work_offloaded = [profile("q", cpu=12.0, gpu=0.2, degree=24,
                                  mem=1 << 20)]
        sim1 = WorkloadSimulator(config)
        all_cpu = sim1.run([UserScript(f"u{i}", list(work_cpu_only))
                            for i in range(4)])
        sim2 = WorkloadSimulator(config)
        offloaded = sim2.run([UserScript(f"u{i}", list(work_offloaded))
                              for i in range(4)])
        assert offloaded.makespan < all_cpu.makespan

    def test_gpu_memory_admission_queues(self):
        """Kernels wait when no device can reserve their memory
        (section 2.1.1 option 1)."""
        config = paper_testbed()
        mem = config.gpus[0].device_memory_bytes  # whole device per kernel
        users = [UserScript(f"u{i}", [profile("q", gpu=1.0, mem=mem)])
                 for i in range(4)]
        sim = WorkloadSimulator(config)
        result = sim.run(users)
        # 4 kernels, 2 devices, 1 at a time per device -> 2 serialized waves.
        assert result.makespan == pytest.approx(2.0)
        assert result.gpu_waits >= 2

    def test_kernels_share_one_device(self):
        config = dataclasses.replace(paper_testbed(),
                                     gpus=(paper_testbed().gpus[0],))
        users = [UserScript(f"u{i}", [profile("q", gpu=1.0, mem=1024)])
                 for i in range(2)]
        result = WorkloadSimulator(config).run(users)
        assert result.makespan == pytest.approx(2.0)  # shared at half rate


class TestInstrumentation:
    def test_memory_log_produced(self):
        config = paper_testbed()
        sim = WorkloadSimulator(config)
        result = sim.run([UserScript(
            "u", [profile("q", cpu=1.0, gpu=0.5, mem=123456)])])
        logs = [s for log in result.device_memory_logs.values() for s in log]
        assert (0.0, 0) not in logs   # first sample is the admit
        assert any(b == 123456 for _, b in logs)
        assert logs[-1][1] == 0       # released at the end

    def test_elapsed_by_query(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript("u", [profile("a", cpu=2.4),
                                           profile("b", cpu=4.8)],
                                     loops=2)])
        elapsed = result.elapsed_by_query()
        assert len(elapsed["a"]) == 2
        assert sum(elapsed["b"]) > sum(elapsed["a"])

    def test_throughput(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript("u", [profile("q", cpu=24.0)],
                                     loops=2)])
        assert result.throughput_per_hour() == pytest.approx(3600.0)

    def test_cpu_only_config_has_no_devices(self):
        config = cpu_only_testbed()
        sim = WorkloadSimulator(config)
        result = sim.run([UserScript("u", [profile("q", cpu=1.0)])])
        assert result.device_memory_logs == {}


class TestThinkTime:
    def test_think_time_extends_makespan(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript("u", [profile("q", cpu=24.0)],
                                     loops=3, think_seconds=0.5)])
        # Three 1s queries with two 0.5s pauses between them.
        assert result.makespan == pytest.approx(4.0)
        assert result.queries_completed == 3

    def test_no_think_after_last_query(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript("u", [profile("q", cpu=24.0)],
                                     loops=1, think_seconds=10.0)])
        assert result.makespan == pytest.approx(1.0)

    def test_thinking_user_frees_capacity_for_others(self):
        config = paper_testbed()
        pacer = UserScript("pacer", [profile("p", cpu=24.0, degree=24)],
                           loops=2, think_seconds=1.0)
        steady = UserScript("steady", [profile("s", cpu=24.0, degree=24)],
                            loops=2)
        paced = WorkloadSimulator(config).run([pacer, steady])
        unpaced = WorkloadSimulator(config).run([
            UserScript("pacer", [profile("p", cpu=24.0, degree=24)],
                       loops=2),
            steady,
        ])
        # While the pacer thinks, the steady user runs uncontended, so its
        # own completions come earlier than in the unpaced run.
        paced_steady_end = max(c.end for c in paced.completions
                               if c.user_id == "steady")
        unpaced_steady_end = max(c.end for c in unpaced.completions
                                 if c.user_id == "steady")
        assert paced_steady_end < unpaced_steady_end

    def test_think_between_queries_in_sequence(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript(
            "u", [profile("a", cpu=24.0), profile("b", cpu=24.0)],
            think_seconds=0.25)])
        ends = {c.query_id: c.end for c in result.completions}
        starts = {c.query_id: c.start for c in result.completions}
        assert starts["b"] - ends["a"] == pytest.approx(0.25)


class TestDeadlockDetection:
    def test_impossible_reservation_raises(self):
        from repro.errors import SimulationError

        config = paper_testbed()
        impossible = config.gpus[0].device_memory_bytes * 2
        sim = WorkloadSimulator(config)
        with pytest.raises(SimulationError, match="blocked"):
            sim.run([UserScript("u", [profile("q", gpu=1.0,
                                              mem=impossible)])])


class TestHeterogeneousDevices:
    def test_big_kernel_waits_for_the_big_device(self):
        """Section 2.2: GPUs 'do not need to be homogeneous'."""
        import dataclasses as dc

        from repro.config import GpuSpec

        small = dc.replace(GpuSpec(), device_memory_bytes=1 << 20)
        big = dc.replace(GpuSpec(), device_memory_bytes=1 << 30)
        config = dc.replace(paper_testbed(), gpus=(small, big))
        users = [
            UserScript("heavy", [profile("h", gpu=1.0, mem=1 << 29)]),
            UserScript("heavy2", [profile("h2", gpu=1.0, mem=1 << 29)]),
            UserScript("light", [profile("l", gpu=1.0, mem=1 << 18)]),
        ]
        result = WorkloadSimulator(config).run(users)
        # Both heavy kernels need the big device; the light one fits the
        # small device and never waits, so everything ends by t=2.
        assert result.makespan == pytest.approx(2.0)
        assert result.queries_completed == 3
