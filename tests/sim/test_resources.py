"""Unit tests for the processor-sharing pool and GPU device states."""

import pytest

from repro.config import GpuSpec, HostSpec
from repro.sim.resources import (
    CpuTask,
    GpuDeviceState,
    GpuKernelTask,
    ProcessorSharingPool,
)


@pytest.fixture()
def host():
    return HostSpec()


@pytest.fixture()
def pool(host):
    return ProcessorSharingPool(host)


class TestEffectiveCapacity:
    def test_linear_up_to_cores(self, host):
        assert host.effective_capacity(1) == 1.0
        assert host.effective_capacity(24) == 24.0

    def test_smt_bonus_diminishes(self, host):
        c24 = host.effective_capacity(24)
        c48 = host.effective_capacity(48)
        c96 = host.effective_capacity(96)
        assert c24 < c48 < c96
        assert c48 - c24 > c96 - c48           # diminishing returns
        assert c96 < 24 * (1 + host.smt_efficiency) + 1e-9

    def test_clamped_at_hardware_threads(self, host):
        assert host.effective_capacity(1000) == \
            host.effective_capacity(host.hardware_threads)


class TestWaterFilling:
    def test_single_task_gets_its_cap(self, pool):
        pool.add(CpuTask(1, remaining=10.0, max_rate=8.0, threads=8))
        assert pool.tasks[1].rate == pytest.approx(8.0)

    def test_fair_share_when_contended(self, pool, host):
        for i in range(4):
            pool.add(CpuTask(i, remaining=10.0, max_rate=24.0, threads=24))
        capacity = host.effective_capacity(96)
        for task in pool.tasks.values():
            assert task.rate == pytest.approx(capacity / 4)

    def test_capped_tasks_release_surplus(self, pool, host):
        pool.add(CpuTask(1, remaining=10.0, max_rate=1.0, threads=1))
        pool.add(CpuTask(2, remaining=10.0, max_rate=48.0, threads=48))
        assert pool.tasks[1].rate == pytest.approx(1.0)
        capacity = host.effective_capacity(49)
        assert pool.tasks[2].rate == pytest.approx(capacity - 1.0)

    def test_total_never_exceeds_capacity(self, pool):
        for i in range(10):
            pool.add(CpuTask(i, remaining=5.0, max_rate=16.0, threads=16))
        total = sum(t.rate for t in pool.tasks.values())
        assert total <= pool.capacity + 1e-9

    def test_capacity_grows_with_threads(self, pool):
        pool.add(CpuTask(1, remaining=1.0, max_rate=24.0, threads=24))
        c1 = pool.capacity
        pool.add(CpuTask(2, remaining=1.0, max_rate=24.0, threads=24))
        assert pool.capacity > c1

    def test_progress_and_completion(self, pool):
        pool.add(CpuTask(1, remaining=10.0, max_rate=5.0, threads=5))
        eta = pool.earliest_completion()
        assert eta == pytest.approx(2.0)
        pool.progress(1.0)
        assert pool.tasks[1].remaining == pytest.approx(5.0)
        pool.remove(1)
        assert pool.earliest_completion() is None

    def test_utilisation(self, pool):
        pool.add(CpuTask(1, remaining=1.0, max_rate=24.0, threads=24))
        assert pool.utilisation == pytest.approx(1.0)


class TestGpuDeviceState:
    def test_admission_respects_memory(self):
        device = GpuDeviceState(0, GpuSpec())
        big = GpuKernelTask(1, remaining=1.0,
                            memory_bytes=10 * 1024**3)
        device.admit(big, now=0.0)
        assert not device.can_admit(5 * 1024**3)
        assert device.can_admit(1 * 1024**3)

    def test_kernel_slot_limit(self):
        spec = GpuSpec()
        device = GpuDeviceState(0, spec)
        for i in range(spec.max_concurrent_kernels):
            device.admit(GpuKernelTask(i, 1.0, 1024), now=0.0)
        assert not device.can_admit(1024)

    def test_sharing_slows_kernels(self):
        device = GpuDeviceState(0, GpuSpec())
        device.admit(GpuKernelTask(1, remaining=1.0, memory_bytes=0), 0.0)
        assert device.earliest_completion() == pytest.approx(1.0)
        device.admit(GpuKernelTask(2, remaining=1.0, memory_bytes=0), 0.0)
        assert device.earliest_completion() == pytest.approx(2.0)

    def test_memory_log_records_transitions(self):
        device = GpuDeviceState(0, GpuSpec())
        device.admit(GpuKernelTask(1, 1.0, 500), now=1.0)
        device.release(1, now=2.0)
        assert device.memory_log == [(1.0, 500), (2.0, 0)]

    def test_progress(self):
        device = GpuDeviceState(0, GpuSpec())
        device.admit(GpuKernelTask(1, remaining=1.0, memory_bytes=0), 0.0)
        device.admit(GpuKernelTask(2, remaining=0.5, memory_bytes=0), 0.0)
        device.progress(0.5)                   # each gets rate 1/2
        assert device.kernels[1].remaining == pytest.approx(0.75)
        assert device.kernels[2].remaining == pytest.approx(0.25)
