"""Simulator request telemetry: per-request phase intervals, queue-depth
and active-session logs (the raw feed of the serving layer)."""

from __future__ import annotations

import pytest

from repro.config import paper_testbed
from repro.sim import UserScript, WorkloadSimulator
from repro.timing import CostEvent, QueryProfile


def profile(qid, cpu=0.0, gpu=0.0, degree=24, mem=0):
    events = []
    if cpu:
        events.append(CostEvent(op="CPU", cpu_seconds=cpu,
                                max_degree=degree))
    if gpu:
        events.append(CostEvent(op="GPU", gpu_seconds=gpu,
                                gpu_memory_bytes=mem, max_degree=1))
    return QueryProfile(qid, gpu_enabled=gpu > 0, events=events)


def run(users):
    return WorkloadSimulator(paper_testbed()).run(users)


class TestRequestTraces:
    def test_one_trace_per_completion(self):
        result = run([UserScript("u", [profile("q", cpu=24.0)], loops=3)])
        assert len(result.requests) == 3
        assert [r.loop for r in result.requests] == [0, 1, 2]
        assert all(r.user_id == "u" and r.query_id == "q"
                   for r in result.requests)

    def test_trace_times_match_completions(self):
        result = run([UserScript("u", [profile("q", cpu=24.0, gpu=0.5,
                                               mem=1 << 20)])])
        [request] = result.requests
        [completion] = result.completions
        assert request.elapsed == pytest.approx(completion.elapsed)
        assert request.end <= result.makespan + 1e-12

    def test_stage_intervals_cover_request(self):
        result = run([UserScript("u", [profile("q", cpu=24.0, gpu=0.5,
                                               mem=1 << 20)])])
        [request] = result.requests
        kinds = {s.kind for s in request.stages}
        assert kinds == {"cpu", "gpu"}
        assert request.offloaded
        total = sum(s.duration for s in request.stages)
        assert total == pytest.approx(request.elapsed)
        for stage in request.stages:
            assert request.start <= stage.start <= stage.end <= request.end

    def test_cpu_only_request_not_offloaded(self):
        result = run([UserScript("u", [profile("q", cpu=24.0)])])
        [request] = result.requests
        assert not request.offloaded
        assert request.queue_wait == 0.0

    def test_queue_wait_recorded_under_contention(self):
        config = paper_testbed()
        mem = config.gpus[0].device_memory_bytes  # one kernel per device
        users = [
            UserScript(f"u{i}", [profile("q", gpu=1.0, mem=mem)])
            for i in range(4)   # 4 kernels, 2 devices -> 2 must wait
        ]
        result = WorkloadSimulator(config).run(users)
        waited = [r for r in result.requests if r.queue_wait > 0.0]
        assert len(waited) == 2
        for request in waited:
            assert any(w.kind == "queue" for w in request.waits)
            assert request.queue_wait == pytest.approx(
                sum(w.duration for w in request.waits))


class TestQueueDepthLog:
    def test_depth_log_under_contention(self):
        config = paper_testbed()
        mem = config.gpus[0].device_memory_bytes
        users = [UserScript(f"u{i}", [profile("q", gpu=1.0, mem=mem)])
                 for i in range(4)]
        result = WorkloadSimulator(config).run(users)
        assert result.max_queue_depth() == 2
        times = [t for t, _ in result.queue_depth_log]
        assert times == sorted(times)
        # Step function: after the run everything has drained.
        assert result.queue_depth_at(result.makespan) == 0
        assert result.queue_depth_at(-1.0) == 0

    def test_no_contention_no_queue(self):
        result = run([UserScript("u", [profile("q", cpu=24.0)])])
        assert result.max_queue_depth() == 0
        assert result.queue_depth_log == []


class TestActiveSessionsLog:
    def test_sessions_drain_to_zero(self):
        users = [UserScript(f"u{i}", [profile("q", cpu=float(12 * (i + 1)))])
                 for i in range(3)]
        result = run(users)
        assert result.active_sessions_at(0.0) == 3
        assert result.active_sessions_at(result.makespan) == 0
        counts = [n for _, n in result.active_sessions_log]
        assert counts[0] == 3 and counts[-1] == 0
        assert all(a >= b for a, b in zip(counts, counts[1:]))
