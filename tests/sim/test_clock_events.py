"""Unit tests for the simulated clock and event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue


class TestClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.now == 2.0

    def test_advance_to(self):
        clock = SimClock(start=1.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_backwards_rejected(self):
        clock = SimClock(start=5.0)
        with pytest.raises(SimulationError):
            clock.advance(-1.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_tiny_negative_tolerated(self):
        clock = SimClock(start=1.0)
        clock.advance(-1e-15)        # floating noise, clamped to zero
        assert clock.now == 1.0


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_on_ties(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(2.5, "x")
        assert q.peek_time() == 2.5
        assert len(q) == 1

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()
