"""Conservation and determinism properties of the workload simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import paper_testbed
from repro.sim import UserScript, WorkloadSimulator
from repro.timing import CostEvent, QueryProfile


def build_profile(spec: list[tuple[float, float]], qid="q") -> QueryProfile:
    """spec: list of (cpu_core_seconds, gpu_seconds) stages."""
    events = []
    for cpu, gpu in spec:
        if cpu > 0:
            events.append(CostEvent(op="C", cpu_seconds=cpu, max_degree=24))
        if gpu > 0:
            events.append(CostEvent(op="G", gpu_seconds=gpu,
                                    gpu_memory_bytes=1 << 20, max_degree=1))
    return QueryProfile(qid, gpu_enabled=True, events=events)


stage_lists = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=5.0),
              st.floats(min_value=0.0, max_value=1.0)),
    min_size=1, max_size=4,
)


class TestConservation:
    @given(specs=st.lists(stage_lists, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, specs):
        """Makespan is at least the critical path of any one user and at
        least total-CPU-work / peak capacity; and at most the fully
        serialised sum."""
        config = paper_testbed()
        host = config.host
        users = [UserScript(f"u{i}", [build_profile(s, qid=f"q{i}")])
                 for i, s in enumerate(specs)]
        sim = WorkloadSimulator(config)
        result = sim.run(users)

        total_cpu = sum(c for s in specs for c, _g in s)
        total_gpu = sum(g for s in specs for _c, g in s)
        peak_capacity = host.effective_capacity(host.hardware_threads)

        lower_cpu = total_cpu / peak_capacity
        lower_gpu = total_gpu / (2 * 1.0)     # two devices, rate 1 each
        per_user = [
            sum(c / host.effective_capacity(24) + g for c, g in s)
            for s in specs
        ]
        lower = max([lower_cpu, lower_gpu] + per_user) if specs else 0.0
        upper = sum(per_user) + 1e-9

        assert result.makespan >= lower - 1e-6
        assert result.makespan <= upper + 1e-6
        assert result.queries_completed == len(users)

    @given(specs=st.lists(stage_lists, min_size=1, max_size=4),
           loops=st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, specs, loops):
        config = paper_testbed()
        users = [UserScript(f"u{i}", [build_profile(s, qid=f"q{i}")],
                            loops=loops)
                 for i, s in enumerate(specs)]
        r1 = WorkloadSimulator(config).run(users)
        r2 = WorkloadSimulator(config).run(users)
        assert r1.makespan == pytest.approx(r2.makespan, abs=1e-12)
        assert [c.end for c in r1.completions] == \
            pytest.approx([c.end for c in r2.completions], abs=1e-12)

    @given(specs=st.lists(stage_lists, min_size=2, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_memory_never_overcommitted(self, specs):
        config = paper_testbed()
        users = [UserScript(f"u{i}", [build_profile(s)])
                 for i, s in enumerate(specs)]
        result = WorkloadSimulator(config).run(users)
        capacity = config.gpus[0].device_memory_bytes
        for log in result.device_memory_logs.values():
            for _t, reserved in log:
                assert 0 <= reserved <= capacity
            if log:
                assert log[-1][1] == 0          # all memory returned

    @given(specs=st.lists(stage_lists, min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_completions_ordered_per_user(self, specs):
        config = paper_testbed()
        users = [UserScript(f"u{i}", [build_profile(s, qid=f"a{i}"),
                                      build_profile(s, qid=f"b{i}")])
                 for i, s in enumerate(specs)]
        result = WorkloadSimulator(config).run(users)
        for i in range(len(specs)):
            mine = [c for c in result.completions
                    if c.user_id == f"u{i}"]
            assert [c.query_id for c in mine] == [f"a{i}", f"b{i}"]
            assert all(c.start <= c.end for c in mine)
