"""Tests for parallel-group (multi-GPU data-parallel) stage execution."""

import pytest

from repro.config import paper_testbed
from repro.sim import UserScript, WorkloadSimulator
from repro.timing import CostEvent, QueryProfile


def profile_with_waves(qid="q", waves=((0.5, 0.5),), mem=1 << 20):
    """Build a profile whose GPU events form parallel waves."""
    events = []
    for group_id, wave in enumerate(waves):
        for gpu_seconds in wave:
            events.append(CostEvent(
                op="GPU-GROUPBY", gpu_seconds=gpu_seconds,
                gpu_memory_bytes=mem, max_degree=1,
                parallel_group=group_id,
            ))
    return QueryProfile(qid, gpu_enabled=True, events=events)


class TestElapsedSerial:
    def test_group_members_overlap(self):
        profile = profile_with_waves(waves=((0.5, 0.5),))
        assert profile.elapsed_serial(48) == pytest.approx(0.5)

    def test_waves_are_sequential(self):
        profile = profile_with_waves(waves=((0.5, 0.3), (0.4, 0.2)))
        assert profile.elapsed_serial(48) == pytest.approx(0.5 + 0.4)

    def test_mixed_sequential_and_parallel(self):
        events = [
            CostEvent(op="SCAN", cpu_seconds=4.8, max_degree=48),
            CostEvent(op="GPU-GROUPBY", gpu_seconds=0.5, max_degree=1,
                      parallel_group=7),
            CostEvent(op="GPU-GROUPBY", gpu_seconds=0.2, max_degree=1,
                      parallel_group=7),
            CostEvent(op="SORT", cpu_seconds=2.4, max_degree=24),
        ]
        profile = QueryProfile("q", True, events)
        expected = 4.8 / 48 + 0.5 + 2.4 / 24
        assert profile.elapsed_serial(48) == pytest.approx(expected)


class TestSimulatorParallelism:
    def test_wave_runs_on_both_devices(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript(
            "u", [profile_with_waves(waves=((1.0, 1.0),))])])
        # Two 1-second kernels on two devices: one second, not two.
        assert result.makespan == pytest.approx(1.0)
        used_devices = [d for d, log in result.device_memory_logs.items()
                        if log]
        assert len(used_devices) == 2

    def test_oversubscribed_wave_shares_devices(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript(
            "u", [profile_with_waves(waves=((1.0, 1.0, 1.0, 1.0),))])])
        # Four kernels on two devices, two resident each at half rate.
        assert result.makespan == pytest.approx(2.0)

    def test_waves_serialise(self):
        sim = WorkloadSimulator(paper_testbed())
        result = sim.run([UserScript(
            "u", [profile_with_waves(waves=((1.0, 1.0), (0.5, 0.5)))])])
        assert result.makespan == pytest.approx(1.5)

    def test_wave_waits_for_memory(self):
        config = paper_testbed()
        capacity = config.gpus[0].device_memory_bytes
        sim = WorkloadSimulator(config)
        result = sim.run([UserScript(
            "u", [profile_with_waves(waves=((1.0, 1.0, 1.0),),
                                     mem=capacity)])])
        # Three whole-device kernels, two devices: third waits.
        assert result.makespan == pytest.approx(2.0)
        assert result.gpu_waits >= 1

    def test_parallel_query_vs_sequential_query(self):
        parallel = profile_with_waves(waves=((1.0, 1.0),))
        sequential = QueryProfile("s", True, events=[
            CostEvent(op="G", gpu_seconds=1.0, gpu_memory_bytes=1 << 20,
                      max_degree=1),
            CostEvent(op="G", gpu_seconds=1.0, gpu_memory_bytes=1 << 20,
                      max_degree=1),
        ])
        sim1 = WorkloadSimulator(paper_testbed())
        sim2 = WorkloadSimulator(paper_testbed())
        t_par = sim1.run([UserScript("u", [parallel])]).makespan
        t_seq = sim2.run([UserScript("u", [sequential])]).makespan
        assert t_par == pytest.approx(1.0)
        assert t_seq == pytest.approx(2.0)
