"""Golden-fingerprint regression tests.

Every workload query's result on the deterministic scale-0.02/seed-11
database is reduced to a stable fingerprint (row count + per-column
checksums).  Any change to the data generator, the operators, the SQL
front end, or the GPU kernels that alters query *answers* breaks these
tests loudly — while cost-model recalibrations do not.

To regenerate after an intentional change:
    python -m tests.test_golden_results
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.workloads.bdinsights import bd_insights_queries

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_fingerprints.json")
SCALE, SEED = 0.02, 11
# One representative query per template family keeps the file reviewable.
QUERY_IDS = [
    "C1", "C2", "C3", "C4", "C5",
    "I01", "I06", "I11", "I16", "I21",
    "S01", "S11", "S21", "S31", "S41", "S51", "S61",
]


def fingerprint(table) -> dict:
    """Order-insensitive, type-stable digest of a result table."""
    data = table.to_pydict()
    columns = {}
    for name in table.schema.names():
        values = data[name]
        rendered = sorted(
            "NULL" if v is None
            else f"{v:.6f}" if isinstance(v, float)
            else str(v)
            for v in values
        )
        digest = hashlib.sha256("\x1f".join(rendered).encode()).hexdigest()
        columns[name] = digest[:16]
    return {"rows": table.num_rows, "columns": columns}


def compute_fingerprints() -> dict:
    from repro.blu.engine import BluEngine
    from repro.workloads.datagen import generate_database

    catalog = generate_database(scale=SCALE, seed=SEED)
    engine = BluEngine(catalog)
    queries = {q.query_id: q for q in bd_insights_queries()}
    return {
        qid: fingerprint(engine.execute_sql(queries[qid].sql).table)
        for qid in QUERY_IDS
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    if not os.path.exists(GOLDEN_PATH):
        pytest.skip("golden file missing; run "
                    "`python -m tests.test_golden_results` to create it")
    with open(GOLDEN_PATH) as f:
        return json.load(f)


@pytest.fixture(scope="module")
def current() -> dict:
    return compute_fingerprints()


@pytest.mark.parametrize("qid", QUERY_IDS)
def test_fingerprint_stable(qid, golden, current):
    assert current[qid] == golden[qid], (
        f"{qid}: result changed — if intentional, regenerate the golden "
        f"file with `python -m tests.test_golden_results`"
    )


def test_golden_file_covers_all_tracked_queries(golden):
    assert sorted(golden) == sorted(QUERY_IDS)


if __name__ == "__main__":
    with open(GOLDEN_PATH, "w") as f:
        json.dump(compute_fingerprints(), f, indent=1, sort_keys=True)
    print(f"wrote {GOLDEN_PATH}")
