"""Smoke tests: every example script runs end to end.

Each example's ``main`` is imported and executed at a tiny scale so the
suite stays fast; stdout is checked for the landmark lines a reader would
look for.
"""

import importlib.util
import os


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Top items by revenue" in out
        assert "performance monitor" in out

    def test_bd_insights_day(self, capsys):
        load_example("bd_insights_day").main(scale=0.01)
        out = capsys.readouterr().out
        assert "complex" in out and "simple" in out
        assert "kernel profile" in out

    def test_rolap_concurrent(self, capsys):
        load_example("rolap_concurrent").main(scale=0.01)
        out = capsys.readouterr().out
        assert "memory screen" in out
        assert "throughput sweep" in out
        assert "serial totals" in out

    def test_kernel_selection_tour(self, capsys):
        load_example("kernel_selection_tour").main()
        out = capsys.readouterr().out
        assert "groupby_shared" in out
        assert "winner:" in out
        assert "recovered" in out
        assert "learning moderator" in out
