"""The exception hierarchy: everything catches as ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SchemaError, errors.TypeMismatchError, errors.SqlError,
    errors.PlanError, errors.ExecutionError, errors.GpuError,
    errors.DeviceMemoryError, errors.ReservationError,
    errors.PinnedMemoryError, errors.HashTableOverflowError,
    errors.KernelAbortedError, errors.KernelLaunchError,
    errors.DeviceLostError, errors.SchedulerError,
    errors.FaultPlanError, errors.SimulationError, errors.WorkloadError,
]


@pytest.mark.parametrize("error_cls", ALL_ERRORS)
def test_all_errors_are_repro_errors(error_cls):
    assert issubclass(error_cls, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise error_cls("boom")


def test_gpu_errors_form_a_subfamily():
    for error_cls in (errors.DeviceMemoryError, errors.ReservationError,
                      errors.PinnedMemoryError,
                      errors.HashTableOverflowError,
                      errors.KernelAbortedError, errors.KernelLaunchError,
                      errors.DeviceLostError):
        assert issubclass(error_cls, errors.GpuError)


def test_catching_does_not_swallow_builtins():
    with pytest.raises(ValueError):
        try:
            raise ValueError("not ours")
        except errors.ReproError:  # pragma: no cover - must not catch
            pytest.fail("ReproError caught a builtin exception")
