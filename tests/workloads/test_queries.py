"""Unit tests for the BD Insights and Cognos ROLAP query sets."""


from repro.blu.sql import parse_query
from repro.workloads.bdinsights import bd_insights_queries, queries_by_category
from repro.workloads.cognos_rolap import cognos_rolap_queries
from repro.workloads.query import QueryCategory
from repro.workloads.scenarios import (
    figure8_thread_groups,
    handcrafted_gpu_heavy_queries,
)


class TestBdInsights:
    def test_population_split(self):
        """Section 5.1.1: 100 queries = 5 complex + 25 intermediate +
        70 simple."""
        queries = bd_insights_queries()
        assert len(queries) == 100
        assert len(queries_by_category(QueryCategory.COMPLEX)) == 5
        assert len(queries_by_category(QueryCategory.INTERMEDIATE)) == 25
        assert len(queries_by_category(QueryCategory.SIMPLE)) == 70

    def test_unique_ids(self):
        ids = [q.query_id for q in bd_insights_queries()]
        assert len(set(ids)) == len(ids)

    def test_all_parse(self):
        for query in bd_insights_queries():
            parse_query(query.sql)               # no exception

    def test_all_have_descriptions(self):
        assert all(q.description for q in bd_insights_queries())

    def test_complex_queries_group_and_mostly_join(self):
        complex_qs = queries_by_category(QueryCategory.COMPLEX)
        assert all("GROUP BY" in q.sql for q in complex_qs)
        joined = [q for q in complex_qs if "JOIN" in q.sql]
        assert len(joined) >= 4        # C4 is the pure fact-table RANK query

    def test_simple_queries_touch_one_table(self):
        for q in queries_by_category(QueryCategory.SIMPLE):
            assert "JOIN" not in q.sql


class TestCognosRolap:
    def test_forty_six_queries(self):
        queries = cognos_rolap_queries()
        assert len(queries) == 46
        assert [q.query_id for q in queries[:4]] == ["Q1", "Q2", "Q3", "Q4"]

    def test_all_parse(self):
        for query in cognos_rolap_queries():
            parse_query(query.sql)

    def test_some_queries_drive_sort_via_rank(self):
        """Section 5.1.2: 'some of which include OLAP functions like
        RANK() that drive SORT'."""
        with_rank = [q for q in cognos_rolap_queries()
                     if "RANK()" in q.sql]
        assert len(with_rank) >= 8

    def test_all_queries_sort(self):
        assert all("ORDER BY" in q.sql for q in cognos_rolap_queries())

    def test_oversized_block_is_q35_to_q46(self):
        oversized = [q for q in cognos_rolap_queries()
                     if "exceeds GPU memory" in q.description]
        assert [q.query_id for q in oversized] == \
            [f"Q{i}" for i in range(35, 47)]


class TestScenarios:
    def test_figure8_has_five_groups_of_two(self):
        groups = figure8_thread_groups()
        assert len(groups) == 5
        assert all(threads == 2 for _, threads, _ in groups)

    def test_handcrafted_group_on_ticket_number(self):
        """'As many groups as there are rows in the table.'"""
        for q in handcrafted_gpu_heavy_queries():
            assert "ss_ticket_number" in q.sql
            assert "ORDER BY" in q.sql
            parse_query(q.sql)


class TestMultiUserScenario:
    def test_population_shape(self):
        from repro.workloads.scenarios import bd_insights_multiuser_groups

        groups = bd_insights_multiuser_groups()
        assert [(name, threads) for name, threads, _q in groups] == [
            ("dashboard", 6), ("sales-report", 3), ("data-scientist", 1)]
        total_threads = sum(t for _n, t, _q in groups)
        assert total_threads == 10

    def test_simulates_with_gain(self, bd_catalog, bd_config):
        from repro.workloads.driver import WorkloadDriver
        from repro.workloads.scenarios import bd_insights_multiuser_groups

        driver = WorkloadDriver(bd_catalog, bd_config)
        groups = bd_insights_multiuser_groups()
        on = driver.simulate_groups(groups, gpu=True)
        off = driver.simulate_groups(groups, gpu=False)
        assert on.queries_completed == off.queries_completed
        assert on.makespan < off.makespan      # offload frees CPU capacity
