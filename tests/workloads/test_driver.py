"""Integration tests for the workload driver (serial + simulated modes)."""

import pytest

from repro.workloads.bdinsights import queries_by_category
from repro.workloads.cognos_rolap import (
    cognos_rolap_queries,
    estimate_gpu_memory_requirement,
    screen_queries,
)
from repro.workloads.driver import WorkloadDriver
from repro.workloads.query import QueryCategory
from repro.workloads.scenarios import figure8_thread_groups


@pytest.fixture(scope="module")
def driver(bd_catalog_module, bd_config_module):
    return WorkloadDriver(bd_catalog_module, bd_config_module)


@pytest.fixture(scope="module")
def bd_catalog_module():
    from repro.workloads.datagen import generate_database

    return generate_database(scale=0.02, seed=11)


@pytest.fixture(scope="module")
def bd_config_module(bd_catalog_module):
    from repro.workloads.datagen import scaled_config

    return scaled_config(bd_catalog_module)


class TestProfiles:
    def test_profile_cached(self, driver):
        query = queries_by_category(QueryCategory.COMPLEX)[0]
        p1 = driver.profile(query, gpu=True)
        p2 = driver.profile(query, gpu=True)
        assert p1 is p2

    def test_gpu_and_cpu_profiles_differ(self, driver):
        query = queries_by_category(QueryCategory.COMPLEX)[0]
        gpu = driver.profile(query, gpu=True)
        cpu = driver.profile(query, gpu=False)
        assert gpu.offloaded
        assert not cpu.offloaded

    def test_elapsed_positive(self, driver):
        query = queries_by_category(QueryCategory.SIMPLE)[0]
        assert driver.elapsed_ms(query, gpu=False) > 0

    def test_degree_clamping_slows_narrow_runs(self, driver):
        query = queries_by_category(QueryCategory.COMPLEX)[1]
        wide = driver.elapsed_ms(query, gpu=False, degree=64)
        narrow = driver.elapsed_ms(query, gpu=False, degree=8)
        assert narrow > wide


class TestSerialRuns:
    def test_run_serial_covers_all_queries(self, driver):
        queries = queries_by_category(QueryCategory.COMPLEX)
        runs = driver.run_serial(queries, gpu=True)
        assert [r.query_id for r in runs] == [q.query_id for q in queries]
        assert all(r.elapsed_ms > 0 for r in runs)

    def test_complex_queries_gain_from_gpu(self, driver):
        queries = queries_by_category(QueryCategory.COMPLEX)
        on = sum(r.elapsed_ms for r in driver.run_serial(queries, gpu=True))
        off = sum(r.elapsed_ms for r in driver.run_serial(queries, gpu=False))
        assert on < off

    def test_simple_queries_never_offload(self, driver):
        queries = queries_by_category(QueryCategory.SIMPLE)[:20]
        runs = driver.run_serial(queries, gpu=True)
        assert not any(r.offloaded for r in runs)


class TestMemoryScreen:
    def test_34_of_46_runnable(self, driver):
        """Section 5.1.2: 12 of the 46 ROLAP queries exceed the K40."""
        runnable, oversized = screen_queries(driver.gpu_engine)
        assert len(runnable) == 34
        assert len(oversized) == 12

    def test_requirement_estimates_positive_for_groupbys(self, driver):
        query = cognos_rolap_queries()[1]        # Q2 groups heavily
        need = estimate_gpu_memory_requirement(driver.gpu_engine, query)
        assert need > 0


class TestSimulatedModes:
    def test_stream_throughput_gain_grows_with_streams(self, driver):
        runnable, _ = screen_queries(driver.gpu_engine)
        queries = runnable[:10]
        gains = []
        for streams in (1, 2):
            on = driver.simulate_streams(queries, streams, 48, gpu=True,
                                         loops=1).throughput_per_hour()
            off = driver.simulate_streams(queries, streams, 48, gpu=False,
                                          loops=1).throughput_per_hour()
            gains.append((on - off) / off)
        assert gains[1] > gains[0] > 0

    def test_group_simulation_produces_memory_trace(self, driver):
        result = driver.simulate_groups(figure8_thread_groups(), gpu=True)
        assert result.queries_completed > 0
        samples = [s for log in result.device_memory_logs.values()
                   for s in log]
        assert samples


class TestShardedProfiles:
    @pytest.fixture(scope="class")
    def sharded_driver(self, bd_catalog_module, bd_config_module):
        import dataclasses

        config = dataclasses.replace(
            bd_config_module,
            gpus=tuple(bd_config_module.gpus[0] for _ in range(4)),
            shard_enabled=True,
            nvlink_enabled=True,
            fusion_enabled=False,
        )
        return WorkloadDriver(bd_catalog_module, config,
                              enable_join_offload=True)

    def test_sharded_profiles_carry_parallel_groups(self, sharded_driver):
        """Sharded execution books one cost event per device and relies
        on ``parallel_group`` collapsing them to the slowest shard."""
        query = queries_by_category(QueryCategory.COMPLEX)[0]
        profile = sharded_driver.profile(query, gpu=True)
        assert any(e.parallel_group >= 0 for e in profile.events)

    def test_degree_clamp_preserves_parallel_groups(self, sharded_driver):
        """Regression: ``_profile_at_degree`` rebuilds the cost events to
        clamp ``max_degree``; dropping ``parallel_group`` there would
        serialize the per-shard events and re-inflate narrow-degree
        estimates."""
        query = queries_by_category(QueryCategory.COMPLEX)[0]
        base = sharded_driver.profile(query, gpu=True)
        clamped = sharded_driver._profile_at_degree(query, gpu=True,
                                                    degree=8)
        assert [e.parallel_group for e in clamped.events] \
            == [e.parallel_group for e in base.events]

    def test_sharded_checksums_match_cpu(self, sharded_driver):
        query = queries_by_category(QueryCategory.COMPLEX)[0]
        assert sharded_driver.result_checksum(query, gpu=True) \
            == sharded_driver.result_checksum(query, gpu=False)
