"""Every table in the generated schema is queryable and join-consistent.

The workload query sets concentrate on the star around store_sales; these
tests sweep the remaining fact and dimension tables so data-generator
regressions anywhere in the 24-table schema surface immediately.
"""

import pytest

from repro.blu.engine import BluEngine
from repro.workloads.tpcds_schema import ALL_TABLES


@pytest.fixture(scope="module")
def engine(bd_catalog):
    return BluEngine(bd_catalog)


class TestEveryTableQueryable:
    @pytest.mark.parametrize("table_name",
                             [spec.name for spec in ALL_TABLES])
    def test_count_star(self, engine, table_name):
        result = engine.execute_sql(
            f"SELECT COUNT(*) AS c FROM {table_name}")
        assert result.table.to_pydict()["c"][0] > 0


class TestStarArmsJoinConsistently:
    """Every FK join returns exactly the fact's row count (FKs are dense)."""

    FACT_ARMS = [
        ("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk"),
        ("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
        ("store_sales", "ss_addr_sk", "customer_address", "ca_address_sk"),
        ("store_sales", "ss_hdemo_sk", "household_demographics",
         "hd_demo_sk"),
        ("store_returns", "sr_reason_sk", "reason", "r_reason_sk"),
        ("catalog_sales", "cs_catalog_page_sk", "catalog_page",
         "cp_catalog_page_sk"),
        ("catalog_sales", "cs_ship_mode_sk", "ship_mode",
         "sm_ship_mode_sk"),
        ("catalog_sales", "cs_call_center_sk", "call_center",
         "cc_call_center_sk"),
        ("catalog_sales", "cs_warehouse_sk", "warehouse",
         "w_warehouse_sk"),
        ("web_sales", "ws_web_site_sk", "web_site", "web_site_sk"),
        ("web_sales", "ws_web_page_sk", "web_page", "wp_web_page_sk"),
        ("web_returns", "wr_reason_sk", "reason", "r_reason_sk"),
        ("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk"),
        ("household_demographics", "hd_income_band_sk", "income_band",
         "ib_income_band_sk"),
    ]

    @pytest.mark.parametrize("fact,fk,dim,pk", FACT_ARMS,
                             ids=[f"{f}->{d}" for f, _fk, d, _pk
                                  in FACT_ARMS])
    def test_fk_join_is_lossless(self, engine, bd_catalog, fact, fk, dim,
                                 pk):
        result = engine.execute_sql(
            f"SELECT COUNT(*) AS c FROM {fact} "
            f"JOIN {dim} ON {fk} = {pk}")
        assert result.table.to_pydict()["c"][0] == \
            bd_catalog.table(fact).num_rows


class TestDimensionAttributesUsable:
    def test_group_by_every_categorical_dim(self, engine):
        for sql, min_groups in (
            ("SELECT sm_type, COUNT(*) AS c FROM ship_mode "
             "GROUP BY sm_type", 2),
            ("SELECT cp_type, COUNT(*) AS c FROM catalog_page "
             "GROUP BY cp_type", 2),
            ("SELECT cc_class, COUNT(*) AS c FROM call_center "
             "GROUP BY cc_class", 2),
            ("SELECT web_class, COUNT(*) AS c FROM web_site "
             "GROUP BY web_class", 2),
            ("SELECT hd_buy_potential, COUNT(*) AS c "
             "FROM household_demographics GROUP BY hd_buy_potential", 3),
        ):
            result = engine.execute_sql(sql)
            assert result.table.num_rows >= min_groups, sql

    def test_income_band_bounds_ordered(self, engine):
        result = engine.execute_sql(
            "SELECT ib_lower_bound, ib_upper_bound FROM income_band "
            "ORDER BY ib_lower_bound")
        d = result.table.to_pydict()
        for lo, hi in zip(d["ib_lower_bound"], d["ib_upper_bound"]):
            assert hi == lo + 4999

    def test_time_dim_hours_valid(self, engine):
        result = engine.execute_sql(
            "SELECT MIN(t_hour) AS lo, MAX(t_hour) AS hi FROM time_dim")
        d = result.table.to_pydict()
        assert d["lo"][0] == 0 and d["hi"][0] == 23
