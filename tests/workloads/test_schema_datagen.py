"""Unit tests for the TPC-DS-derived schema and data generator."""

import numpy as np
import pytest

from repro.workloads.datagen import generate_database, scaled_config
from repro.workloads.tpcds_schema import (
    ALL_TABLES,
    DIMENSIONS,
    FACTS,
    column_owner,
    dimension_rows,
    fact_rows,
    table_spec,
)


class TestSchemaShape:
    def test_seven_facts_seventeen_dimensions(self):
        """Section 5.1.1's headline schema shape."""
        assert len(FACTS) == 7
        assert len(DIMENSIONS) == 17

    def test_store_sales_star_arms_exist(self):
        """Figure 4: the store_sales star touches its dimensions."""
        names = {spec.name for spec in ALL_TABLES}
        ss = table_spec("store_sales")
        refs = {c.ref for c in ss.columns if c.ref}
        assert refs <= names
        assert {"date_dim", "item", "customer", "store", "promotion",
                "customer_demographics", "household_demographics",
                "customer_address", "time_dim"} <= refs

    def test_column_prefixes_unique_per_table(self):
        seen = {}
        for spec in ALL_TABLES:
            for col in spec.columns:
                assert col.name not in seen, \
                    f"{col.name} in both {seen.get(col.name)} and {spec.name}"
                seen[col.name] = spec.name

    def test_column_owner(self):
        assert column_owner("ss_item_sk") == "store_sales"
        assert column_owner("d_year") == "date_dim"
        assert column_owner("nope") is None

    def test_row_scaling(self):
        assert fact_rows("store_sales", 0.1) == 400_000
        assert dimension_rows("customer", 0.25) == 50_000
        assert dimension_rows("date_dim", 0.01) == \
            dimension_rows("date_dim", 1.0)      # calendar never shrinks
        assert dimension_rows("store", 0.01) == 120  # tiny dims fixed
        with pytest.raises(ValueError):
            dimension_rows("store_sales", 0.1)


class TestDatagen:
    @pytest.fixture(scope="class")
    def catalog(self):
        return generate_database(scale=0.01, seed=3)

    def test_all_tables_generated(self, catalog):
        assert len(catalog.table_names()) == 24

    def test_deterministic(self):
        a = generate_database(scale=0.01, seed=3)
        b = generate_database(scale=0.01, seed=3)
        ta, tb = a.table("store_sales"), b.table("store_sales")
        for ca, cb in zip(ta.columns, tb.columns):
            assert np.array_equal(ca.data, cb.data)

    def test_seed_changes_data(self):
        a = generate_database(scale=0.01, seed=3)
        b = generate_database(scale=0.01, seed=4)
        assert not np.array_equal(a.table("store_sales").column("ss_item_sk").data,
                                  b.table("store_sales").column("ss_item_sk").data)

    def test_foreign_keys_resolve(self, catalog):
        ss = catalog.table("store_sales")
        for fk, dim, key in (("ss_store_sk", "store", "s_store_sk"),
                             ("ss_item_sk", "item", "i_item_sk"),
                             ("ss_sold_date_sk", "date_dim", "d_date_sk")):
            values = ss.column(fk).data
            dim_rows = catalog.table(dim).num_rows
            assert values.min() >= 1
            assert values.max() <= dim_rows

    def test_item_keys_are_skewed(self, catalog):
        items = catalog.table("store_sales").column("ss_item_sk").data
        counts = np.bincount(items)
        top = np.sort(counts)[::-1]
        # Zipf: the hottest item is far above the median item.
        assert top[0] > 5 * np.median(counts[counts > 0])

    def test_date_dim_is_coherent(self, catalog):
        dd = catalog.table("date_dim")
        d = dd.to_pydict()
        assert d["d_year"][0] == 2010
        assert d["d_year"][-1] >= 2014
        assert set(d["d_qoy"]) <= {1, 2, 3, 4}
        assert all(1 <= m <= 12 for m in d["d_moy"])

    def test_money_columns_positive_scaled(self, catalog):
        paid = catalog.table("store_sales").column("ss_net_paid").data
        assert paid.min() >= 50                  # >= 0.5 currency in cents
        assert paid.dtype == np.int64

    def test_stats_collected(self, catalog):
        stats = catalog.column_stats("store_sales", "ss_store_sk")
        assert stats is not None
        assert stats.distinct <= catalog.table("store").num_rows

    def test_bad_scale_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            generate_database(scale=0)


class TestScaledConfig:
    def test_proportions(self):
        catalog = generate_database(scale=0.01, seed=3)
        config = scaled_config(catalog)
        ss_rows = catalog.table("store_sales").num_rows
        assert config.gpu_count == 2
        assert config.gpus[0].device_memory_bytes >= 4 * 1024 * 1024
        assert config.thresholds.t1_min_rows < ss_rows
        assert config.thresholds.t3_max_rows > config.thresholds.t1_min_rows

    def test_single_gpu_variant(self):
        catalog = generate_database(scale=0.01, seed=3)
        config = scaled_config(catalog, gpus=1)
        assert config.gpu_count == 1


class TestNullableForeignKeys:
    def test_fact_fk_nulls_generated(self):
        catalog = generate_database(scale=0.01, seed=3)
        col = catalog.table("store_sales").column("ss_customer_sk")
        assert col.null_mask is not None
        fraction = col.null_mask.mean()
        assert 0.01 < fraction < 0.06        # declared 3%

    def test_null_customers_form_a_group(self):
        from repro.blu.engine import BluEngine

        catalog = generate_database(scale=0.01, seed=3)
        engine = BluEngine(catalog)
        result = engine.execute_sql(
            "SELECT ss_customer_sk, COUNT(*) AS c FROM store_sales "
            "GROUP BY ss_customer_sk ORDER BY c DESC LIMIT 1")
        d = result.table.to_pydict()
        # The NULL (walk-in) group is by far the largest single "customer".
        assert d["ss_customer_sk"][0] is None

    def test_inner_join_drops_null_fks(self):
        from repro.blu.engine import BluEngine

        catalog = generate_database(scale=0.01, seed=3)
        engine = BluEngine(catalog)
        joined = engine.execute_sql(
            "SELECT COUNT(*) AS c FROM store_sales "
            "JOIN customer ON ss_customer_sk = c_customer_sk")
        total = catalog.table("store_sales").num_rows
        nulls = int(catalog.table("store_sales")
                    .column("ss_customer_sk").null_mask.sum())
        assert joined.table.to_pydict()["c"][0] == total - nulls
