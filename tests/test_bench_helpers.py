"""Tests for the benchmark reporting and chart helpers."""

import os

import pytest

from repro.bench import (
    ExperimentReport,
    bar_chart,
    format_table,
    gain_percent,
    speedup,
    timeline_chart,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"],
                            [("alpha", 1.5), ("b", 22222.25)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "alpha" in text
        assert "22,222.2" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestExperimentReport:
    def test_emit_writes_file(self, tmp_path):
        report = ExperimentReport("expX", "demo", ["k", "v"])
        report.add_row("a", 1)
        report.add_note("a note")
        report.add_chart("|##|")
        path = report.emit(str(tmp_path))
        assert os.path.exists(path)
        content = open(path).read()
        assert "expX" in content
        assert "a note" in content
        assert "|##|" in content


class TestCharts:
    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart(["q1", "q2"],
                          {"on": [1.0, 2.0], "off": [2.0, 4.0]},
                          width=20, unit="ms")
        lines = [ln for ln in chart.splitlines() if "|" in ln]
        # The largest value fills the full width.
        assert any("=" * 20 in ln or "#" * 20 in ln for ln in lines)
        assert "legend" not in chart  # legend is glyph mapping, not word
        assert "# = on" in chart

    def test_bar_chart_handles_zeroes(self):
        chart = bar_chart(["x"], {"s": [0.0]})
        assert "0.000" in chart

    def test_timeline_chart_shows_peak(self):
        samples = [(0.0, 0), (1.0, 800), (2.0, 0), (3.0, 1000), (4.0, 0)]
        chart = timeline_chart(samples, capacity=1000, width=20, height=5)
        assert "peak" in chart
        assert "capacity" in chart
        assert "#" in chart

    def test_timeline_chart_empty(self):
        assert "no samples" in timeline_chart([])


class TestMath:
    def test_gain_percent(self):
        assert gain_percent(100.0, 80.0) == pytest.approx(20.0)
        assert gain_percent(0.0, 5.0) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        assert speedup(1.0, 0.0) == float("inf")


class TestCollect:
    def test_collect_orders_and_wraps(self, tmp_path):
        from repro.bench.collect import collect, main

        (tmp_path / "fig5.txt").write_text("FIG5 BODY")
        (tmp_path / "table1.txt").write_text("TABLE1 BODY")
        (tmp_path / "zzz_custom.txt").write_text("CUSTOM BODY")
        text = collect(str(tmp_path))
        assert text.index("TABLE1 BODY") < text.index("FIG5 BODY") \
            < text.index("CUSTOM BODY")
        assert main([str(tmp_path)]) == 0
        assert (tmp_path / "SUMMARY.md").exists()

    def test_main_without_results_dir(self, tmp_path):
        from repro.bench.collect import main

        assert main([str(tmp_path / "missing")]) == 1


class TestGanttChart:
    def test_renders_users_and_legend(self):
        from repro.bench import gantt_chart
        from repro.sim.simulator import QueryCompletion

        completions = [
            QueryCompletion("u1", "qa", 0.0, 1.0),
            QueryCompletion("u1", "qb", 1.0, 3.0),
            QueryCompletion("u2", "qa", 0.0, 2.0),
        ]
        chart = gantt_chart(completions, width=20)
        assert "u1 |" in chart and "u2 |" in chart
        assert "a=qa" in chart and "b=qb" in chart

    def test_empty(self):
        from repro.bench import gantt_chart

        assert "no completions" in gantt_chart([])
