"""Property-based engine parity: random tables, random queries, GPU == CPU.

Hypothesis builds small random tables (nullable ints, floats, strings),
random sort/group specifications, and asserts the GPU-accelerated engine
and the stock CPU engine return identical answers.  Thresholds are lowered
so even tiny inputs exercise the offload paths.
"""

import dataclasses

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.blu import BluEngine, Catalog, Schema, Table
from repro.blu.datatypes import float64, int32, varchar
from repro.config import paper_testbed
from repro.core import GpuAcceleratedEngine
from tests.conftest import tables_equal


def low_threshold_config(pipeline_depth=4, chunk_bytes=1 << 20):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=8,
                                     t2_min_groups=2, sort_min_rows=8)
    return dataclasses.replace(config, thresholds=thresholds,
                               pipeline_depth=pipeline_depth,
                               chunk_bytes=chunk_bytes)


@st.composite
def random_catalog(draw):
    n = draw(st.integers(min_value=16, max_value=200))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    null_rate = draw(st.sampled_from([0.0, 0.1, 0.3]))

    def maybe_null(values):
        return [None if rng.random() < null_rate else v for v in values]

    schema = Schema.of(("k", int32()), ("v", int32()), ("f", float64()),
                       ("s", varchar(4)))
    table = Table.from_pydict("t", schema, {
        "k": maybe_null(rng.integers(0, 12, n).tolist()),
        "v": rng.integers(-100, 100, n).tolist(),
        "f": maybe_null(np.round(rng.random(n) * 50, 2).tolist()),
        "s": rng.choice(np.array(list("wxyz"), dtype=object), n).tolist(),
    })
    catalog = Catalog()
    catalog.register(table)
    return catalog


GROUP_SQL = st.sampled_from([
    "SELECT k, COUNT(*) AS c, SUM(v) AS s FROM t GROUP BY k",
    "SELECT k, s, SUM(v) AS sv, MIN(v) AS mn FROM t GROUP BY k, s",
    "SELECT s, AVG(f) AS af, MAX(v) AS mx FROM t GROUP BY s",
    "SELECT k, COUNT(DISTINCT s) AS ds FROM t GROUP BY k",
])

SORT_SQL = st.sampled_from([
    "SELECT k, v FROM t ORDER BY k, v",
    "SELECT f, v FROM t ORDER BY f DESC, v",
    "SELECT s, v, k FROM t ORDER BY s, k DESC, v",
])


class TestRandomParity:
    @given(catalog=random_catalog(), sql=GROUP_SQL)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_groupby_parity(self, catalog, sql):
        gpu = GpuAcceleratedEngine(catalog, config=low_threshold_config())
        cpu = BluEngine(catalog)
        assert tables_equal(gpu.execute_sql(sql).table,
                            cpu.execute_sql(sql).table)

    @given(catalog=random_catalog(), sql=SORT_SQL)
    @settings(max_examples=25, deadline=None)
    def test_sort_parity(self, catalog, sql):
        gpu = GpuAcceleratedEngine(catalog, config=low_threshold_config())
        cpu = BluEngine(catalog)
        assert tables_equal(gpu.execute_sql(sql).table,
                            cpu.execute_sql(sql).table)

    @given(catalog=random_catalog())
    @settings(max_examples=10, deadline=None)
    def test_racing_parity(self, catalog):
        sql = "SELECT k, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY k"
        racing = GpuAcceleratedEngine(catalog,
                                      config=low_threshold_config(),
                                      race_kernels=True)
        cpu = BluEngine(catalog)
        assert tables_equal(racing.execute_sql(sql).table,
                            cpu.execute_sql(sql).table)

    @given(catalog=random_catalog(), sql=st.one_of(GROUP_SQL, SORT_SQL),
           depth=st.integers(min_value=1, max_value=6),
           chunk_bytes=st.sampled_from([256, 4096, 1 << 16, 1 << 20]))
    @settings(max_examples=25, deadline=None)
    def test_pipeline_knobs_never_change_answers(self, catalog, sql,
                                                 depth, chunk_bytes):
        """Stream pipelining only reshapes the launch *timing*: for any
        (depth, chunk_bytes) the result tables must stay bit-identical
        to the CPU baseline."""
        gpu = GpuAcceleratedEngine(
            catalog, config=low_threshold_config(pipeline_depth=depth,
                                                 chunk_bytes=chunk_bytes))
        cpu = BluEngine(catalog)
        assert tables_equal(gpu.execute_sql(sql).table,
                            cpu.execute_sql(sql).table)
