"""Tests for the command-line interface (run in-process)."""

import pytest

from repro.cli import main


SCALE = ["--scale", "0.01", "--seed", "3"]


class TestSqlCommand:
    def test_runs_and_prints_rows(self, capsys):
        code = main(SCALE + ["sql",
                             "SELECT ss_store_sk, COUNT(*) AS c "
                             "FROM store_sales GROUP BY ss_store_sk "
                             "ORDER BY c DESC LIMIT 3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ss_store_sk" in out
        assert "simulated ms" in out

    def test_no_gpu_flag(self, capsys):
        code = main(SCALE + ["sql", "--no-gpu",
                             "SELECT COUNT(*) AS c FROM store_sales"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CPU-only" in out

    def test_limit_truncates(self, capsys):
        main(SCALE + ["sql", "--limit", "2",
                      "SELECT ss_item_sk FROM store_sales LIMIT 50"])
        out = capsys.readouterr().out
        assert "more rows" in out


class TestOtherCommands:
    def test_explain(self, capsys):
        code = main(SCALE + ["explain",
                             "SELECT i_category, SUM(ss_net_paid) AS rev "
                             "FROM store_sales "
                             "JOIN item ON ss_item_sk = i_item_sk "
                             "GROUP BY i_category"])
        out = capsys.readouterr().out
        assert code == 0
        assert "GROUPBY" in out and "HASHJOIN" in out

    def test_schema(self, capsys):
        code = main(SCALE + ["schema"])
        out = capsys.readouterr().out
        assert code == 0
        assert "store_sales" in out
        assert "date_dim" in out
        assert "simulated GPUs" in out

    def test_workload_complex(self, capsys):
        code = main(SCALE + ["workload", "complex"])
        out = capsys.readouterr().out
        assert code == 0
        assert "C1" in out and "TOTAL" in out

    def test_monitor(self, capsys):
        code = main(SCALE + ["monitor"])
        out = capsys.readouterr().out
        assert code == 0
        assert "performance monitor" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestInspectCommand:
    def test_inspect(self, capsys):
        code = main(SCALE + ["inspect",
                             "SELECT ss_store_sk, COUNT(*) AS c "
                             "FROM store_sales GROUP BY ss_store_sk"])
        out = capsys.readouterr().out
        assert code == 0
        assert "== plan ==" in out
        assert "== offload decisions ==" in out


class TestMonitorJson:
    def test_json_export(self, capsys, tmp_path):
        out_path = str(tmp_path / "events.json")
        code = main(SCALE + ["monitor", "--json", out_path])
        assert code == 0
        import json

        with open(out_path) as f:
            doc = json.load(f)
        kinds = {e["kind"] for e in doc["events"]}
        assert "query" in kinds and "decision" in kinds
        assert doc["stats"]["queries"] > 0
        assert "counters" in doc["stats"]

    def test_bare_json_prints_events_instead_of_report(self, capsys):
        import json

        code = main(SCALE + ["monitor", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "performance monitor" not in out
        doc = json.loads(out)
        assert {e["kind"] for e in doc["events"]} >= {"query", "decision"}
        # The JSON surface carries the same snapshot cache-stats/top use.
        assert {"queries", "counters", "cache", "pipeline",
                "devices", "quarantined"} <= set(doc["stats"])


class TestTraceCommand:
    def test_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "trace.json")
        code = main(SCALE + ["trace",
                             "SELECT i_category, SUM(ss_net_paid) AS rev "
                             "FROM store_sales "
                             "JOIN item ON ss_item_sk = i_item_sk "
                             "GROUP BY i_category",
                             "--out", out_path])
        assert code == 0
        assert "spans" in capsys.readouterr().out
        with open(out_path) as f:
            doc = json.load(f)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert {"query", "plan", "op.groupby"} <= names
        roots = [e for e in events if e["args"]["parent_id"] is None]
        assert len(roots) == 1

    def test_jsonl_sidecar(self, tmp_path, capsys):
        from repro.obs.export import TraceLog

        out_path = str(tmp_path / "trace.json")
        jsonl_path = str(tmp_path / "spans.jsonl")
        code = main(SCALE + ["trace",
                             "SELECT COUNT(*) AS c FROM store_sales",
                             "--out", out_path, "--jsonl", jsonl_path])
        assert code == 0
        records = TraceLog.read(jsonl_path)
        assert records and records[0]["name"] == "query"


class TestProfileCommand:
    SQL = ("SELECT i_category, SUM(ss_net_paid) AS rev "
           "FROM store_sales "
           "JOIN item ON ss_item_sk = i_item_sk "
           "GROUP BY i_category")

    def test_prints_explain_analyze(self, capsys):
        code = main(SCALE + ["profile", self.SQL])
        out = capsys.readouterr().out
        assert code == 0
        assert "EXPLAIN ANALYZE" in out
        assert "path selection (Figure 3)" in out
        assert "(100.00%)" in out

    def test_is_deterministic(self, capsys):
        main(SCALE + ["profile", self.SQL])
        first = capsys.readouterr().out
        main(SCALE + ["profile", self.SQL])
        assert capsys.readouterr().out == first

    def test_json_and_html_export(self, capsys, tmp_path):
        import json

        json_path = str(tmp_path / "profile.json")
        html_path = str(tmp_path / "profile.html")
        code = main(SCALE + ["profile", self.SQL,
                             "--json", json_path, "--html", html_path])
        assert code == 0
        with open(json_path) as f:
            doc = json.load(f)
        assert doc["query_id"] == "profile"
        html = (tmp_path / "profile.html").read_text()
        assert html.startswith("<!DOCTYPE html>")

    def test_bare_json_prints_document(self, capsys):
        import json

        code = main(SCALE + ["profile", self.SQL, "--json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["operators"]["name"] == "query"


class TestBenchCommand:
    def test_update_then_compare_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "BENCH_bd_insights.json")
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--baseline", path, "--update"])
        assert code == 0
        assert "wrote baseline" in capsys.readouterr().out
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--baseline", path, "--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out

    def test_compare_fails_on_injected_slowdown(self, capsys, tmp_path):
        path = str(tmp_path / "BENCH_bd_insights.json")
        main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                      "--baseline", path, "--update"])
        capsys.readouterr()
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--baseline", path, "--compare",
                             "--slowdown", "1.5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "regressed" in out

    def test_compare_without_baseline_errors(self, capsys, tmp_path):
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--baseline", str(tmp_path / "absent.json"),
                             "--compare"])
        assert code == 1
        assert "no baseline" in capsys.readouterr().out

    def test_cache_fraction_and_out(self, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "result.json")
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--cache-fraction", "0", "--out", out_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "cache=0.0" in out
        doc = json.load(open(out_path))
        assert doc["cache_fraction"] == 0.0

    def test_compare_inherits_baseline_cache_fraction(self, capsys,
                                                      tmp_path):
        # A cache-off baseline must be compared with a cache-off run even
        # when --cache-fraction is not repeated on the compare side.
        path = str(tmp_path / "BENCH_off.json")
        main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                      "--cache-fraction", "0", "--baseline", path,
                      "--update"])
        capsys.readouterr()
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--baseline", path, "--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out and "cache=0.0" in out

    def test_pipeline_knobs_and_out(self, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "result.json")
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--pipeline-depth", "2",
                             "--chunk-bytes", "65536",
                             "--out", out_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "pipeline=2x65536B" in out
        doc = json.load(open(out_path))
        assert doc["pipeline_depth"] == 2
        assert doc["chunk_bytes"] == 65536

    def test_compare_inherits_baseline_pipeline_knobs(self, capsys,
                                                      tmp_path):
        # A pipeline-off baseline must be compared with a pipeline-off
        # run even when the knobs are not repeated on the compare side.
        path = str(tmp_path / "BENCH_pipeline_off.json")
        main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                      "--pipeline-depth", "1", "--baseline", path,
                      "--update"])
        capsys.readouterr()
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--baseline", path, "--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out and "pipeline=1x" in out

    def test_fusion_off_and_join_offload(self, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "result.json")
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--fusion", "off", "--join-offload",
                             "--out", out_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "fusion=off" in out
        doc = json.load(open(out_path))
        assert doc["fusion_enabled"] is False
        for cls in doc["classes"].values():
            assert cls["kernel_launches"] >= 0

    def test_compare_inherits_baseline_fusion_knob(self, capsys, tmp_path):
        # A fusion-off baseline must be compared with a fusion-off run
        # even when --fusion is not repeated on the compare side.
        path = str(tmp_path / "BENCH_fusion_off.json")
        main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                      "--fusion", "off", "--baseline", path, "--update"])
        capsys.readouterr()
        code = main(SCALE + ["bench", "bd_insights", "--classes", "complex",
                             "--baseline", path, "--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out and "fusion=off" in out


class TestCacheStatsCommand:
    def test_table_output(self, capsys):
        code = main(SCALE + ["cache-stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "GPU" in out and "hit rate" in out
        assert "transfer elided" in out

    def test_json_output(self, capsys):
        import json

        code = main(SCALE + ["cache-stats", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert {"queries", "counters", "cache", "pipeline",
                "devices", "quarantined"} <= set(doc)
        assert isinstance(doc["cache"], list) and doc["cache"]
        assert {"device_id", "hits", "misses"} <= set(doc["cache"][0])
        # PR-5 overlap counters must be visible here, not just in
        # `repro metrics` (the drift this snapshot unification fixes).
        assert doc["pipeline"]

    def test_disabled_cache_message(self, capsys):
        code = main(SCALE + ["cache-stats", "--cache-fraction", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "disabled" in out


class TestMetricsCommand:
    def test_prometheus_output(self, capsys):
        code = main(SCALE + ["metrics"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_queries_total counter" in out
        assert "repro_kernel_latency_seconds_bucket" in out

    def test_json_output(self, capsys):
        import json

        code = main(SCALE + ["metrics", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        snapshot = json.loads(out)
        assert "repro_queries_total" in snapshot


class TestServeBenchCommand:
    def test_update_then_compare_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "BENCH_serving_sweep.json")
        code = main(SCALE + ["serve-bench", "bd_insights",
                             "--classes", "complex", "--sessions", "1,2",
                             "--baseline", path, "--update"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote baseline" in out
        assert "sessions" in out          # the Table-3-style ladder
        code = main(SCALE + ["serve-bench", "bd_insights",
                             "--classes", "complex",
                             "--baseline", path, "--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out

    def test_compare_fails_on_injected_slowdown(self, capsys, tmp_path):
        path = str(tmp_path / "BENCH_serving_sweep.json")
        main(SCALE + ["serve-bench", "bd_insights", "--classes", "complex",
                      "--sessions", "1,2", "--baseline", path, "--update"])
        capsys.readouterr()
        code = main(SCALE + ["serve-bench", "bd_insights",
                             "--classes", "complex",
                             "--baseline", path, "--compare",
                             "--slowdown", "1.5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "regressed" in out

    def test_compare_without_baseline_errors(self, capsys, tmp_path):
        code = main(SCALE + ["serve-bench", "bd_insights",
                             "--baseline", str(tmp_path / "absent.json"),
                             "--compare"])
        assert code == 1
        assert "no baseline" in capsys.readouterr().out

    def test_out_writes_sweep_json(self, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "sweep.json")
        code = main(SCALE + ["serve-bench", "bd_insights",
                             "--classes", "complex", "--sessions", "1,2",
                             "--out", out_path])
        assert code == 0
        capsys.readouterr()
        doc = json.load(open(out_path))
        assert doc["kind"] == "serving_sweep"
        assert sorted(doc["points"]) == ["1", "2"]

    def test_unknown_class_fails(self, capsys):
        code = main(SCALE + ["serve-bench", "bd_insights",
                             "--classes", "nope", "--sessions", "1"])
        assert code == 1
        assert "unknown class" in capsys.readouterr().out


class TestTopCommand:
    def test_renders_dashboard(self, capsys):
        code = main(SCALE + ["top", "bd_insights", "--classes", "complex",
                             "--sessions", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top" in out
        assert "sessions: " in out
        assert "-- SLOs --" in out
        assert "-- engine --" in out

    def test_at_midpoint_vs_end(self, capsys):
        code = main(SCALE + ["top", "bd_insights", "--classes", "complex",
                             "--sessions", "4", "--at", "0.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "completed: 0" in out

    def test_unknown_class_fails(self, capsys):
        code = main(SCALE + ["top", "bd_insights", "--classes", "nope"])
        assert code == 1
        assert "unknown class" in capsys.readouterr().out
