"""Property-based tests (hypothesis) on the core data structures.

These cover the invariants the whole reproduction leans on: GPU kernels
agree with the CPU grouping primitives on arbitrary inputs, the hybrid
sort's byte encoding is order-preserving for every type, the KMV sketch is
merge-consistent, and the water-filling allocator conserves capacity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blu.compression import build_dictionary
from repro.blu.datatypes import int64
from repro.blu.expressions import AggFunc
from repro.blu.operators.aggregate import group_encode
from repro.blu.statistics import KmvSketch, estimate_distinct, murmur3_fmix64
from repro.config import CostModel, HostSpec
from repro.gpu.kernels.groupby_biglock import GlobalLockGroupByKernel
from repro.gpu.kernels.groupby_regular import RegularGroupByKernel
from repro.gpu.kernels.groupby_shared import SharedMemoryGroupByKernel
from repro.gpu.kernels.hashtable import GpuHashTable, combine_keys
from repro.gpu.kernels.radix_sort import RadixSortKernel
from repro.gpu.kernels.request import GroupByRequest, PayloadSpec
from repro.sim.resources import CpuTask, ProcessorSharingPool

_COST = CostModel()

keys_arrays = st.lists(
    st.integers(min_value=-2**40, max_value=2**40), min_size=1, max_size=400,
).map(lambda xs: np.asarray(xs, dtype=np.int64))

small_keys_arrays = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=400,
).map(lambda xs: np.asarray(xs, dtype=np.int64))


class TestGroupEncodeProperties:
    @given(keys=keys_arrays)
    @settings(max_examples=60, deadline=None)
    def test_partition_invariants(self, keys):
        index, first, n = group_encode([keys])
        assert n == len(np.unique(keys))
        assert index.min() >= 0 and index.max() == n - 1
        # Same key <-> same group id.
        for g in range(n):
            members = keys[index == g]
            assert (members == members[0]).all()
        # Groups are numbered by first appearance.
        firsts = [np.nonzero(index == g)[0][0] for g in range(n)]
        assert firsts == sorted(firsts)

    @given(a=keys_arrays)
    @settings(max_examples=30, deadline=None)
    def test_multi_key_refines_single_key(self, a):
        b = (a % 3).astype(np.int64)
        _, _, n_single = group_encode([a])
        _, _, n_pair = group_encode([a, b])
        assert n_pair >= n_single           # adding a key never merges groups


class TestKernelProperties:
    @given(keys=small_keys_arrays,
           n_aggs=st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_all_kernels_agree_with_reference(self, keys, n_aggs):
        payloads = [PayloadSpec(int64(), AggFunc.SUM)] * n_aggs
        est = len(np.unique(keys))
        request = GroupByRequest(keys=keys, key_bits=64, payloads=payloads,
                                 estimated_groups=est)
        ref_index, _, ref_n = group_encode([keys])
        for kernel in (RegularGroupByKernel(_COST),
                       SharedMemoryGroupByKernel(_COST),
                       GlobalLockGroupByKernel(_COST)):
            result = kernel.run(request)
            assert result.n_groups == ref_n
            assert np.array_equal(result.group_index, ref_index)
            assert result.kernel_seconds > 0

    @given(keys=small_keys_arrays)
    @settings(max_examples=25, deadline=None)
    def test_hash_table_slots_partition_keys(self, keys):
        table = GpuHashTable.sized_for(len(np.unique(keys)), 64,
                                       [PayloadSpec(int64(), AggFunc.SUM)])
        row_slot, stats = table.insert(keys)
        assert stats.groups == len(np.unique(keys))
        for slot in np.unique(row_slot):
            members = keys[row_slot == slot]
            assert (members == members[0]).all()

    @given(parts=st.lists(
        st.lists(st.integers(min_value=0, max_value=1000),
                 min_size=5, max_size=50),
        min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_combine_keys_preserves_grouping(self, parts):
        length = min(len(p) for p in parts)
        arrays = [np.asarray(p[:length], dtype=np.int64) for p in parts]
        combined, exact = combine_keys(arrays)
        gi_combined, _, n_combined = group_encode([combined])
        gi_ref, _, n_ref = group_encode(arrays)
        if exact:
            assert n_combined == n_ref
            assert np.array_equal(gi_combined, gi_ref)


class TestRadixSortProperties:
    @given(keys=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                         max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_sorts_any_input(self, keys):
        arr = np.asarray(keys, dtype=np.uint32)
        result = RadixSortKernel(_COST).run(arr)
        assert np.array_equal(arr[result.order], np.sort(arr))
        # Duplicate ranges exactly cover repeated keys.
        covered = sum(r.length for r in result.duplicate_ranges)
        _, counts = np.unique(arr, return_counts=True)
        assert covered == counts[counts > 1].sum()


class TestSortEncodingProperties:
    @given(values=st.lists(st.integers(min_value=-2**62, max_value=2**62),
                           min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_int64_byte_order_matches_value_order(self, values):
        from repro.blu.plan import SortKey
        from repro.blu.table import Schema, Table
        from repro.core.hybrid_sort import encode_sort_keys

        t = Table.from_pydict("t", Schema.of(("v", int64())), {"v": values})
        encoded = encode_sort_keys(t, [SortKey("v")])
        rows = [bytes(encoded[i]) for i in range(len(values))]
        by_bytes = sorted(range(len(values)), key=lambda i: (rows[i], i))
        by_value = sorted(range(len(values)), key=lambda i: (values[i], i))
        assert by_bytes == by_value

    @given(values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_float_byte_order_matches_value_order(self, values):
        from repro.blu.plan import SortKey
        from repro.blu.table import Schema, Table
        from repro.blu.datatypes import float64
        from repro.core.hybrid_sort import encode_sort_keys

        t = Table.from_pydict("t", Schema.of(("f", float64())),
                              {"f": values})
        encoded = encode_sort_keys(t, [SortKey("f")])
        rows = [bytes(encoded[i]) for i in range(len(values))]
        by_bytes = sorted(range(len(values)), key=lambda i: (rows[i], i))
        by_value = sorted(range(len(values)), key=lambda i: (values[i], i))
        assert by_bytes == by_value


class TestDictionaryProperties:
    @given(values=st.lists(st.text(min_size=0, max_size=8), min_size=1,
                           max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_and_rank(self, values):
        dictionary, codes = build_dictionary(values)
        assert list(dictionary.decode(codes)) == values
        ranks = dictionary.sort_rank[codes]
        order = sorted(range(len(values)), key=lambda i: (ranks[i], i))
        assert [values[i] for i in order] == sorted(values)


class TestKmvProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31),
           distinct=st.integers(min_value=1, max_value=30_000))
    @settings(max_examples=25, deadline=None)
    def test_estimate_within_error_bound(self, seed, distinct):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, distinct, size=min(4 * distinct, 60_000))
        hashes = murmur3_fmix64(keys.astype(np.int64))
        true = len(np.unique(keys))
        estimate = estimate_distinct(hashes, k=512).groups
        if true <= 512:
            assert estimate == true
        else:
            assert abs(estimate - true) / true < 0.35

    @given(chunks=st.lists(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                 max_size=200),
        min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_merge_order_invariant(self, chunks):
        arrays = [murmur3_fmix64(np.asarray(c, dtype=np.int64))
                  for c in chunks]
        forward = KmvSketch(k=64)
        for a in arrays:
            forward.update(a)
        backward = KmvSketch(k=64)
        for a in reversed(arrays):
            backward.update(a)
        assert forward.estimate().groups == backward.estimate().groups


class TestWaterFillingProperties:
    @given(caps=st.lists(st.integers(min_value=1, max_value=96), min_size=1,
                         max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_allocation_feasible_and_work_conserving(self, caps):
        host = HostSpec()
        pool = ProcessorSharingPool(host)
        for i, cap in enumerate(caps):
            pool.add(CpuTask(i, remaining=1.0,
                             max_rate=host.effective_capacity(cap),
                             threads=cap))
        total = sum(t.rate for t in pool.tasks.values())
        capacity = pool.capacity
        assert total <= capacity + 1e-6
        for task in pool.tasks.values():
            assert task.rate <= task.max_rate + 1e-9
            assert task.rate > 0
        # Work conserving: either capacity is saturated or everyone is
        # running at their cap.
        if total < capacity - 1e-6:
            for task in pool.tasks.values():
                assert task.rate == pytest.approx(task.max_rate)
