"""FaultPlan / FaultRule: parsing, validation, round-trips."""

import pytest

from repro.errors import FaultPlanError
from repro.faults import FAULT_SITES, FaultPlan, FaultRule


class TestRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="warp-divergence")

    def test_probability_range(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="launch", probability=1.5)
        with pytest.raises(FaultPlanError):
            FaultRule(site="launch", probability=-0.1)

    def test_nth_is_one_based(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="launch", nth=(0,))

    def test_stall_only_for_transfer(self):
        FaultRule(site="transfer", stall_seconds=1e-3)   # fine
        with pytest.raises(FaultPlanError):
            FaultRule(site="launch", stall_seconds=1e-3)

    def test_unconditional_rule(self):
        assert FaultRule(site="launch").unconditional
        assert not FaultRule(site="launch", nth=(2,)).unconditional
        assert not FaultRule(site="launch", probability=0.5).unconditional

    def test_device_matching(self):
        anywhere = FaultRule(site="launch")
        only_one = FaultRule(site="launch", device_id=1)
        assert anywhere.matches_device(0) and anywhere.matches_device(7)
        assert only_one.matches_device(1)
        assert not only_one.matches_device(0)


class TestParse:
    def test_single_rule(self):
        plan = FaultPlan.parse("reserve:p=0.3")
        assert plan.rules == (FaultRule(site="reserve", probability=0.3),)

    def test_full_syntax(self):
        plan = FaultPlan.parse(
            "launch@1:nth=2|5;transfer:p=0.5,stall=0.002;pinned:every=4")
        assert plan.rules[0] == FaultRule(site="launch", device_id=1,
                                          nth=(2, 5))
        assert plan.rules[1] == FaultRule(site="transfer", probability=0.5,
                                          stall_seconds=0.002)
        assert plan.rules[2] == FaultRule(site="pinned", every=4)

    def test_lossy_keyword(self):
        plan = FaultPlan.parse("lossy", seed=99)
        assert plan.active
        assert plan.seed == 99
        assert {r.site for r in plan.rules} == set(FAULT_SITES) - {"alloc"}

    @pytest.mark.parametrize("bad", [
        "", "   ", "launch:nth", "launch:p=high", "launch@gpu0",
        "launch:frequency=2", "meteor-strike:p=1",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_spec_round_trips(self):
        spec = "reserve:p=0.25;launch@1:nth=2|5;transfer:p=0.3,stall=0.002"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.spec()) == plan

    def test_lossy_round_trips(self):
        plan = FaultPlan.lossy()
        assert FaultPlan.parse(plan.spec()) == plan


class TestPlanBasics:
    def test_empty_plan_inactive(self):
        assert not FaultPlan().active
        assert FaultPlan().spec() == ""

    def test_for_site(self):
        plan = FaultPlan.parse("launch:p=0.5;reserve:p=0.2;launch:nth=9")
        assert len(plan.for_site("launch")) == 2
        assert plan.for_site("alloc") == ()

    def test_with_seed(self):
        plan = FaultPlan.lossy()
        assert plan.with_seed(5).seed == 5
        assert plan.with_seed(5).rules == plan.rules

    def test_total_device_loss(self):
        plan = FaultPlan.total_device_loss()
        assert plan.rules == (FaultRule(site="device_loss", nth=(1,)),)
