"""Shard-device loss: reroute one shard, rebalance, stay byte-identical.

Satellite of the scale-out PR: when a shard's home device dies mid-
query, *only that shard* reroutes (the survivors keep their home
placement), the engine rebalances the catalog's shard maps afterwards,
and every answer — during and after the fault — matches the CPU chain
bit for bit.  The hypothesis property widens this to any shard count
crossed with any single fault rule.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blu import BluEngine, Catalog
from repro.config import paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.faults import FAULT_SITES, FaultPlan, FaultRule
from repro.workloads.driver import tables_match

QUERIES = (
    "SELECT s_item, SUM(s_qty) AS q, COUNT(*) AS c "
    "FROM sales GROUP BY s_item",
    "SELECT s_channel, s_qty FROM sales ORDER BY s_channel, s_qty",
    "SELECT st_state, SUM(s_paid) AS paid "
    "FROM sales JOIN stores ON s_store = st_id GROUP BY st_state",
)
GROUPBY_SQL = QUERIES[0]


def sharded_config(devices=4, faults=None):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     sort_min_rows=5_000)
    return dataclasses.replace(
        config,
        thresholds=thresholds,
        gpus=tuple(config.gpus[0] for _ in range(devices)),
        shard_enabled=True,
        nvlink_enabled=True,
        fusion_enabled=False,
        faults=faults,
    )


def fresh_catalog(sales_table, stores_table) -> Catalog:
    """Per-test catalog: shard-map DDL must not leak into the session."""
    catalog = Catalog()
    catalog.register(sales_table)
    catalog.register(stores_table)
    return catalog


class TestShardDeviceLoss:
    """Device 2 dies at its first launch — deterministically, mid-wave."""

    @pytest.fixture()
    def lossy(self, sales_table, stores_table):
        catalog = fresh_catalog(sales_table, stores_table)
        engine = GpuAcceleratedEngine(
            catalog,
            config=sharded_config(
                faults=FaultPlan.parse("device_loss@2:nth=1")),
            enable_join_offload=True)
        return catalog, engine

    def test_only_the_lost_shard_reroutes(self, lossy):
        catalog, engine = lossy
        got = engine.execute_sql(GROUPBY_SQL, query_id="q1").table
        (exec_span,) = [s for s in engine.tracer.spans
                        if s.name == "shard.exec"]
        attrs = exec_span.attributes
        assert attrs["shards"] == 4
        assert attrs["rerouted"] == 1          # exactly the dead home
        assert attrs["gpu_shards"] + attrs["cpu_shards"] == 4
        assert tables_match(
            got, BluEngine(catalog).execute_sql(GROUPBY_SQL).table)

    def test_loss_triggers_rebalance_ddl(self, lossy):
        catalog, engine = lossy
        version_before = catalog.version
        engine.execute_sql(GROUPBY_SQL, query_id="q1")
        (rebalance,) = [s for s in engine.tracer.spans
                        if s.name == "shard.rebalance"]
        assert rebalance.attributes["lost"] == [2]
        assert catalog.version > version_before
        (shard_map,) = catalog.shard_maps()
        assert shard_map.devices == (0, 1, 3)
        assert 2 in engine.scheduler.quarantined_devices()

    def test_post_rebalance_queries_avoid_the_dead_device(self, lossy):
        catalog, engine = lossy
        engine.execute_sql(GROUPBY_SQL, query_id="q1")
        got = engine.execute_sql(GROUPBY_SQL, query_id="q2").table
        execs = [s for s in engine.tracer.spans if s.name == "shard.exec"
                 and s.attributes["query_id"] == "q2"]
        assert execs, "the rebalanced map no longer shards"
        attrs = execs[0].attributes
        assert attrs["shards"] == 3
        assert attrs["devices"] == [0, 1, 3]
        assert attrs["rerouted"] == 0
        assert tables_match(
            got, BluEngine(catalog).execute_sql(GROUPBY_SQL).table)

    def test_every_query_shape_survives_the_loss(self, lossy):
        catalog, engine = lossy
        cpu = BluEngine(catalog)
        for i, sql in enumerate(QUERIES):
            got = engine.execute_sql(sql, query_id=f"q{i}").table
            assert tables_match(got, cpu.execute_sql(sql).table), sql


@pytest.mark.chaos
class TestShardedWorkloadParity:
    def test_sharded_driver_verifies_parity_under_loss(self, bd_catalog,
                                                       bd_config):
        """The satellite's headline: a sharded 4-device BD Insights run
        with a mid-workload device loss stays ``verify_parity``-clean."""
        from repro.workloads.bdinsights import queries_by_category
        from repro.workloads.driver import WorkloadDriver
        from repro.workloads.query import QueryCategory

        config = dataclasses.replace(
            bd_config,
            gpus=tuple(bd_config.gpus[0] for _ in range(4)),
            shard_enabled=True,
            nvlink_enabled=True,
            fusion_enabled=False,
            faults=FaultPlan.parse("device_loss@1:nth=3"),
        )
        driver = WorkloadDriver(bd_catalog, config,
                                enable_join_offload=True)
        queries = queries_by_category(QueryCategory.COMPLEX)
        assert driver.verify_parity(queries) == []
        engine = driver.gpu_engine
        assert not engine.devices[1].alive
        assert any(s.name == "shard.rebalance"
                   for s in engine.tracer.spans)


single_fault_rules = st.builds(
    lambda site, device_id, trigger: FaultRule(
        site=site, device_id=device_id,
        stall_seconds=2e-3 if site == "transfer" else 0.0, **trigger),
    site=st.sampled_from(FAULT_SITES),
    device_id=st.sampled_from([-1, 0, 1]),
    trigger=st.one_of(
        st.integers(1, 4).map(lambda n: {"nth": (n,)}),
        st.sampled_from([0.5, 1.0]).map(lambda p: {"probability": p}),
        st.integers(1, 3).map(lambda k: {"every": k}),
    ),
)

_baseline_cache: dict[str, object] = {}


def _baselines(catalog):
    if not _baseline_cache:
        cpu = BluEngine(catalog)
        for sql in QUERIES:
            _baseline_cache[sql] = cpu.execute_sql(sql).table
    return _baseline_cache


@given(devices=st.sampled_from([2, 3, 4]), rule=single_fault_rules,
       seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_any_shard_count_any_single_fault_preserves_results(
        sales_table, stores_table, devices, rule, seed):
    """Any shard count x any single fault rule: the merged answers stay
    byte-identical to the CPU chain."""
    catalog = fresh_catalog(sales_table, stores_table)
    plan = FaultPlan(rules=(rule,), seed=seed)
    engine = GpuAcceleratedEngine(
        catalog, config=sharded_config(devices, faults=plan),
        enable_join_offload=True)
    for sql in QUERIES:
        got = engine.execute_sql(sql).table
        assert tables_match(got, _baselines(catalog)[sql]), \
            f"diverged under {rule.spec()!r} at {devices} devices " \
            f"(seed {seed}): {sql}"
