"""Circuit-breaker state machine (CLOSED -> OPEN -> HALF_OPEN -> ...)."""

import pytest

from repro.faults import BreakerState, CircuitBreaker


def test_starts_closed_and_allowing():
    breaker = CircuitBreaker()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allows()
    assert not breaker.quarantined


def test_opens_at_threshold():
    breaker = CircuitBreaker(failure_threshold=3)
    assert not breaker.record_failure()
    assert not breaker.record_failure()
    assert breaker.record_failure()          # third consecutive failure
    assert breaker.quarantined
    assert not breaker.allows()
    assert breaker.trips == 1


def test_success_resets_the_streak():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    assert not breaker.record_failure()      # streak restarted
    assert breaker.state is BreakerState.CLOSED


def test_trip_opens_immediately():
    breaker = CircuitBreaker(failure_threshold=5)
    breaker.trip()
    assert breaker.quarantined
    breaker.trip()                           # idempotent while open
    assert breaker.trips == 1


def test_cooldown_reaches_half_open_then_closes_on_success():
    breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=3)
    breaker.record_failure()
    assert breaker.quarantined
    assert not breaker.tick()
    assert not breaker.tick()
    assert breaker.tick()                    # third round: probe allowed
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.allows()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


def test_half_open_probe_failure_reopens():
    breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
    breaker.record_failure()
    breaker.tick()
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.record_failure()
    assert breaker.quarantined
    assert breaker.trips == 2
    # The cool-down restarted in full.
    assert not breaker.tick() or breaker.cooldown_calls == 1


def test_tick_is_noop_when_not_open():
    breaker = CircuitBreaker()
    assert not breaker.tick()
    assert breaker.state is BreakerState.CLOSED


def test_constructor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_calls=0)
