"""Chaos runs (``-m chaos``): whole workloads under lossy fault plans.

These exercise the acceptance criteria end to end: under the default
lossy plan — and under 100% device loss — every BD Insights query must
return results bit-identical to the CPU-only engine, the recovery
metrics must appear in the Prometheus export, and the fallback spans in
the Chrome trace.
"""

import dataclasses

import pytest

from repro.config import paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.faults import FaultPlan
from repro.workloads.driver import WorkloadDriver
from repro.workloads.query import QueryCategory

pytestmark = pytest.mark.chaos


def _queries(category):
    from repro.workloads.bdinsights import queries_by_category

    return queries_by_category(category)


@pytest.fixture()
def chaos_driver(bd_catalog, bd_config):
    def build(plan):
        return WorkloadDriver(bd_catalog,
                              dataclasses.replace(bd_config, faults=plan))

    return build


class TestWorkloadParity:
    def test_lossy_plan_full_parity(self, chaos_driver):
        driver = chaos_driver(FaultPlan.lossy())
        queries = _queries(QueryCategory.COMPLEX) \
            + _queries(QueryCategory.INTERMEDIATE)
        assert driver.verify_parity(queries) == []
        # The run must actually have been chaotic, not quietly fault-free.
        assert driver.gpu_engine.injector.total_injected() > 0

    def test_total_device_loss_full_parity(self, chaos_driver):
        """100% device loss: every query still answers, CPU-identically."""
        driver = chaos_driver(FaultPlan.total_device_loss())
        queries = _queries(QueryCategory.COMPLEX)
        assert driver.verify_parity(queries) == []
        engine = driver.gpu_engine
        assert engine.injector.injected.get("device_loss", 0) >= 1
        dead = [d.device_id for d in engine.devices if not d.alive]
        assert dead, "no device ever died — the plan was not exercised"
        assert set(dead) <= set(engine.scheduler.quarantined_devices())


class TestChaosObservability:
    @pytest.fixture()
    def broken_device_engine(self, small_catalog):
        """Device 0 fails every launch: deterministic quarantine."""
        config = paper_testbed()
        thresholds = dataclasses.replace(config.thresholds,
                                         t1_min_rows=5_000,
                                         sort_min_rows=5_000)
        config = dataclasses.replace(
            config, thresholds=thresholds,
            faults=FaultPlan.parse("launch@0:p=1.0"))
        engine = GpuAcceleratedEngine(small_catalog, config=config)
        for i in range(6):
            engine.execute_sql(
                "SELECT s_store, SUM(s_paid) AS paid FROM sales "
                "GROUP BY s_store", query_id=f"chaos-{i}")
        return engine

    def test_quarantine_and_injection_metrics_exported(
            self, broken_device_engine):
        text = broken_device_engine.prometheus()
        assert 'repro_faults_injected_total{site="launch"}' in text
        assert 'repro_gpu_quarantined{device="0"} 1' in text
        assert "repro_fault_fallbacks_total" in text
        assert "repro_gpu_quarantine_trips_total 1" in text

    def test_fallback_spans_in_chrome_trace(self, broken_device_engine):
        names = [s.name for s in broken_device_engine.tracer.spans]
        assert "fault.injected" in names
        assert "fault.fallback" in names
        assert "scheduler.quarantine" in names
        trace = broken_device_engine.chrome_trace()
        trace_names = {e.get("name") for e in trace["traceEvents"]}
        assert "fault.fallback" in trace_names

    def test_queries_keep_answering_after_quarantine(
            self, broken_device_engine, small_catalog):
        from repro.blu import BluEngine
        from repro.workloads.driver import tables_match

        want = BluEngine(small_catalog).execute_sql(
            "SELECT s_store, SUM(s_paid) AS paid FROM sales "
            "GROUP BY s_store").table
        got = broken_device_engine.execute_sql(
            "SELECT s_store, SUM(s_paid) AS paid FROM sales "
            "GROUP BY s_store").table
        assert tables_match(got, want)
        # Device 1 is healthy, so the engine still offloads.
        assert broken_device_engine.monitor.counters.gpu_offloads > 0


class TestChaosServing:
    def test_device_loss_trips_slo_alert_with_full_parity(
            self, chaos_driver, bd_catalog, bd_config):
        """Losing every GPU under concurrent serving must page — the SLO
        burn-rate alert fires — while the CPU-fallback results stay
        bit-identical to the baseline engine."""
        from repro.obs.slo import SLObjective
        from repro.workloads.driver import ConcurrentDriver, WorkloadDriver

        queries = _queries(QueryCategory.COMPLEX)
        healthy = WorkloadDriver(bd_catalog, bd_config)
        broken = chaos_driver(FaultPlan.total_device_loss())

        # Probe both tails, then pin the SLO threshold between them:
        # the healthy run must clear it, the degraded run cannot.
        probe_ok = ConcurrentDriver(healthy, queries).run(sessions=8)
        probe_bad = ConcurrentDriver(broken, queries).run(sessions=8)
        assert probe_ok.offload_ratio() > 0.0
        assert probe_bad.offload_ratio() == 0.0
        assert probe_bad.hist.p50 > probe_ok.hist.p999, \
            "device loss did not visibly degrade the latency tail"
        threshold = (probe_ok.hist.p999 + probe_bad.hist.p50) / 2.0
        slos = [SLObjective("latency", objective=0.99,
                            latency_threshold=threshold)]

        good = ConcurrentDriver(healthy, queries, slos=slos).run(sessions=8)
        assert good.slo.alerts == []

        bad = ConcurrentDriver(broken, queries, slos=slos).run(sessions=8)
        assert bad.slo.alerts, "device loss must trip the burn-rate alert"
        alert = bad.slo.alerts[0]
        assert alert.slo == "latency"
        assert alert.long_burn > alert.rule.threshold
        assert any(s.name == "slo.alert" for s in bad.tracer.spans)

        # The degraded run still answers every query CPU-identically.
        assert broken.verify_parity(queries) == []


class TestChaosStreams:
    def test_simulate_streams_completes_under_lossy_plan(self,
                                                         chaos_driver):
        driver = chaos_driver(FaultPlan.lossy())
        queries = _queries(QueryCategory.SIMPLE)
        result = driver.simulate_streams(queries, streams=4, degree=24,
                                         gpu=True, loops=2)
        assert result.queries_completed == 4 * len(queries) * 2
        assert result.makespan > 0
