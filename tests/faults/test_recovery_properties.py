"""Resilience properties: any single injected fault leaves results
bit-identical to the CPU baseline, and the degradation machinery
(retry, breaker, lease lifecycle) behaves under failure."""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import GpuSpec, paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.core.scheduler import MultiGpuScheduler
from repro.faults import (
    FAULT_SITES,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
)
from repro.gpu.device import make_devices
from repro.obs.tracing import Tracer
from repro.workloads.driver import tables_match

QUERIES = (
    "SELECT s_store, SUM(s_paid) AS paid, COUNT(*) AS c "
    "FROM sales GROUP BY s_store",
    "SELECT s_item, s_paid FROM sales ORDER BY s_paid DESC, s_item",
    "SELECT st_state, SUM(s_paid) AS paid "
    "FROM sales JOIN stores ON s_store = st_id GROUP BY st_state",
)

_baseline_cache: dict[str, object] = {}


def _test_config(faults=None, pipeline_depth=4, chunk_bytes=1 << 20):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     sort_min_rows=5_000)
    return dataclasses.replace(config, thresholds=thresholds, faults=faults,
                               pipeline_depth=pipeline_depth,
                               chunk_bytes=chunk_bytes)


def _baselines(small_catalog):
    if not _baseline_cache:
        from repro.blu import BluEngine

        engine = BluEngine(small_catalog)
        for sql in QUERIES:
            _baseline_cache[sql] = engine.execute_sql(sql).table
    return _baseline_cache


single_fault_rules = st.builds(
    lambda site, device_id, trigger: FaultRule(
        site=site, device_id=device_id,
        stall_seconds=2e-3 if site == "transfer" else 0.0, **trigger),
    site=st.sampled_from(FAULT_SITES),
    device_id=st.sampled_from([-1, 0, 1]),
    trigger=st.one_of(
        st.integers(1, 4).map(lambda n: {"nth": (n,)}),
        st.sampled_from([0.3, 0.7, 1.0]).map(
            lambda p: {"probability": p}),
        st.integers(1, 3).map(lambda k: {"every": k}),
    ),
)


@given(rule=single_fault_rules, seed=st.integers(0, 2**16),
       pipeline_depth=st.integers(1, 6),
       chunk_bytes=st.sampled_from([4096, 1 << 16, 1 << 20]))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_any_single_fault_preserves_results(small_catalog, rule, seed,
                                            pipeline_depth, chunk_bytes):
    """The headline guarantee: whatever one rule does to the substrate —
    and whatever the stream-pipeline knobs, which multiply the per-chunk
    fault sites — all three hybrid executors return the CPU baseline's
    answers."""
    plan = FaultPlan(rules=(rule,), seed=seed)
    engine = GpuAcceleratedEngine(
        small_catalog,
        config=_test_config(faults=plan, pipeline_depth=pipeline_depth,
                            chunk_bytes=chunk_bytes),
        enable_join_offload=True)
    for sql in QUERIES:
        got = engine.execute_sql(sql).table
        assert tables_match(got, _baselines(small_catalog)[sql]), \
            f"results diverged under {rule.spec()!r} (seed {seed}, " \
            f"depth {pipeline_depth}, chunk {chunk_bytes}): {sql}"


def make_scheduler(n=2, memory=1_000_000):
    specs = [dataclasses.replace(GpuSpec(), device_memory_bytes=memory)
             for _ in range(n)]
    return MultiGpuScheduler(make_devices(specs))


class TestQuarantineLeaseLifecycle:
    def test_quarantined_device_releases_in_flight_lease(self):
        """Regression: quarantining a device must not leak the lease that
        was in flight when it failed."""
        scheduler = make_scheduler()
        lease = scheduler.try_acquire(1000, tag="doomed")
        device = lease.device
        device.alive = False                       # whole-device loss
        assert scheduler.record_failure(lease)     # trips immediately
        assert device.device_id in scheduler.quarantined_devices()
        assert device.memory.reserved == 1000      # still held ...
        scheduler.release(lease)                   # ... until released
        assert device.memory.reserved == 0
        assert device.outstanding_jobs == 0

    def test_quarantined_device_not_a_candidate(self):
        scheduler = make_scheduler(n=2)
        lease = scheduler.try_acquire(10)
        first_id = lease.device.device_id
        for _ in range(3):                         # reach the threshold
            scheduler.record_failure(lease)
        scheduler.release(lease)
        for _ in range(4):
            other = scheduler.try_acquire(10)
            assert other.device.device_id != first_id
            scheduler.release(other)

    def test_cooldown_readmits_then_success_closes(self):
        scheduler = make_scheduler(n=1)
        scheduler.breakers[0] = CircuitBreaker(failure_threshold=1,
                                               cooldown_calls=2)
        lease = scheduler.try_acquire(10)
        scheduler.record_failure(lease)
        scheduler.release(lease)
        assert scheduler.try_acquire(10) is None   # round 1: still open
        probe = scheduler.try_acquire(10)          # round 2: half-open
        assert probe is not None
        scheduler.record_success(probe)
        scheduler.release(probe)
        assert scheduler.quarantined_devices() == []

    def test_dead_device_never_candidates_even_half_open(self):
        scheduler = make_scheduler(n=1)
        lease = scheduler.try_acquire(10)
        lease.device.alive = False
        scheduler.record_failure(lease)
        scheduler.release(lease)
        for _ in range(20):                        # cool-down elapses...
            assert scheduler.try_acquire(10) is None   # ...alive gates it


class TestReservationRetry:
    def test_transient_reservation_failure_retries_to_success(self):
        scheduler = make_scheduler(n=1)
        tracer = Tracer()
        scheduler.tracer = tracer
        scheduler.retry_policy = RetryPolicy(attempts=3)
        injector = FaultInjector(FaultPlan.parse("reserve:nth=1"))
        scheduler.devices[0].attach_injector(injector)
        lease = scheduler.try_acquire(1000, tag="retry-me")
        assert lease is not None                   # second attempt won
        assert injector.calls("reserve", 0) == 2
        assert "fault.backoff" in [s.name for s in tracer.spans]

    def test_exhausted_retries_concede_none(self):
        scheduler = make_scheduler(n=1)
        scheduler.retry_policy = RetryPolicy(attempts=2)
        injector = FaultInjector(FaultPlan.parse("reserve:p=1.0"))
        scheduler.devices[0].attach_injector(injector)
        assert scheduler.try_acquire(1000) is None
        assert injector.calls("reserve", 0) == 2

    def test_no_policy_means_single_attempt(self):
        scheduler = make_scheduler(n=1)
        injector = FaultInjector(FaultPlan.parse("reserve:nth=1"))
        scheduler.devices[0].attach_injector(injector)
        assert scheduler.try_acquire(1000) is None
        assert injector.calls("reserve", 0) == 1

    def test_backoff_delays_grow_exponentially(self):
        policy = RetryPolicy(attempts=4, backoff_seconds=1e-3,
                             multiplier=2.0)
        assert list(policy.delays()) == pytest.approx([1e-3, 2e-3, 4e-3])
