"""Each substrate seam honours an armed injector, deterministically."""

import dataclasses

import pytest

from repro.config import GpuSpec
from repro.errors import (
    DeviceLostError,
    DeviceMemoryError,
    KernelLaunchError,
    PinnedMemoryError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.gpu.device import GpuDevice
from repro.gpu.pinned import PinnedMemoryPool
from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def make_device(device_id=0, memory=10_000_000):
    spec = dataclasses.replace(GpuSpec(), device_memory_bytes=memory)
    return GpuDevice(device_id, spec)


def arm(device, spec, **kwargs):
    injector = FaultInjector(FaultPlan.parse(spec), **kwargs)
    device.attach_injector(injector)
    return injector


def launch_once(device, nbytes=1000):
    reservation = device.memory.reserve(nbytes, "test")
    try:
        return device.launch("kernel", 1e-3, reservation,
                             bytes_in=nbytes, bytes_out=nbytes)
    finally:
        device.memory.release(reservation)


class TestSites:
    def test_reserve_site_fails_reservation(self):
        device = make_device()
        arm(device, "reserve:nth=1")
        assert device.memory.try_reserve(100) is None     # injected
        assert device.memory.try_reserve(100) is not None  # next is clean

    def test_alloc_site_raises(self):
        device = make_device()
        arm(device, "alloc:nth=1")
        reservation = device.memory.reserve(1000, "test")
        with pytest.raises(DeviceMemoryError, match="injected"):
            device.memory.allocate(reservation, 10)
        device.memory.allocate(reservation, 10)            # next is clean

    def test_launch_site_raises(self):
        device = make_device()
        arm(device, "launch:nth=1")
        with pytest.raises(KernelLaunchError):
            launch_once(device)
        launch_once(device)                                # next is clean
        assert device.alive

    def test_transfer_site_stalls_without_failing(self):
        clean = launch_once(make_device())
        device = make_device()
        arm(device, "transfer:nth=1,stall=0.5")
        stalled = launch_once(device)
        assert stalled.transfer_in_seconds == pytest.approx(
            clean.transfer_in_seconds + 0.5)
        assert launch_once(device).transfer_in_seconds == pytest.approx(
            clean.transfer_in_seconds)

    def test_pinned_site_raises(self):
        pool = PinnedMemoryPool(1_000_000)
        pool.injector = FaultInjector(FaultPlan.parse("pinned:nth=1"))
        with pytest.raises(PinnedMemoryError, match="injected"):
            pool.allocate(100)
        buffer = pool.allocate(100)                        # next is clean
        pool.release(buffer)

    def test_device_loss_is_permanent(self):
        device = make_device()
        arm(device, "device_loss:nth=1")
        with pytest.raises(DeviceLostError):
            launch_once(device)
        assert not device.alive
        with pytest.raises(DeviceLostError):               # stays dead
            launch_once(device)

    def test_device_scoping(self):
        lucky, doomed = make_device(0), make_device(1)
        plan = FaultPlan.parse("launch@1")
        injector = FaultInjector(plan)
        lucky.attach_injector(injector)
        doomed.attach_injector(injector)
        launch_once(lucky)                                 # unaffected
        with pytest.raises(KernelLaunchError):
            launch_once(doomed)


class TestTriggers:
    def test_nth_counts_per_site_and_device(self):
        injector = FaultInjector(FaultPlan.parse("launch:nth=2"))
        assert injector.decide("launch", 0) is None
        assert injector.decide("launch", 1) is None   # device 1's call #1
        assert injector.decide("launch", 0) is not None
        assert injector.calls("launch", 0) == 2

    def test_every_trigger(self):
        injector = FaultInjector(FaultPlan.parse("pinned:every=3"))
        fired = [injector.decide("pinned") is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_probability_is_seed_deterministic(self):
        plan = FaultPlan.parse("launch:p=0.5", seed=7)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [a.decide("launch") is not None for _ in range(50)]
        seq_b = [b.decide("launch") is not None for _ in range(50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        c = FaultInjector(plan.with_seed(8))
        seq_c = [c.decide("launch") is not None for _ in range(50)]
        assert seq_c != seq_a

    def test_inactive_site_never_fires(self):
        injector = FaultInjector(FaultPlan.parse("launch:p=1.0"))
        assert injector.decide("reserve") is None
        assert injector.total_injected() == 0


class TestAccounting:
    def test_metric_and_instant_per_injection(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        device = make_device()
        arm(device, "launch:nth=1|2", metrics=registry, tracer=tracer)
        for _ in range(2):
            with pytest.raises(KernelLaunchError):
                launch_once(device)
        assert device.injector.injected == {"launch": 2}
        text = prometheus_text(registry)
        assert 'repro_faults_injected_total{site="launch"} 2' in text
        names = [s.name for s in tracer.spans]
        assert names.count("fault.injected") == 2

    def test_zero_fault_run_still_exports_family(self):
        registry = MetricsRegistry()
        FaultInjector(FaultPlan.parse("launch:nth=99"), metrics=registry)
        assert "repro_faults_injected_total" in prometheus_text(registry)
