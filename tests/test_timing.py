"""Unit tests for cost events and query profiles."""

import pytest

from repro.config import HostSpec
from repro.timing import CostEvent, CostLedger, QueryProfile


class TestCostEvent:
    def test_elapsed_uses_degree_cap(self):
        event = CostEvent(op="X", cpu_seconds=10.0, max_degree=4)
        assert event.elapsed(cores=2) == pytest.approx(5.0)
        assert event.elapsed(cores=8) == pytest.approx(2.5)

    def test_elapsed_with_host_applies_smt(self):
        host = HostSpec()
        event = CostEvent(op="X", cpu_seconds=96.0, max_degree=96)
        naive = event.elapsed(96)
        with_smt = event.elapsed(96, host)
        assert with_smt > naive                  # 96 threads != 96 cores

    def test_gpu_seconds_add_serially(self):
        event = CostEvent(op="X", cpu_seconds=4.0, max_degree=4,
                          gpu_seconds=0.5)
        assert event.elapsed(4) == pytest.approx(1.5)
        assert event.uses_gpu

    def test_pure_gpu_event(self):
        event = CostEvent(op="G", gpu_seconds=0.25)
        assert event.elapsed(48) == pytest.approx(0.25)


class TestQueryProfile:
    def _profile(self):
        return QueryProfile("q", gpu_enabled=True, events=[
            CostEvent(op="SCAN", cpu_seconds=2.0, max_degree=2),
            CostEvent(op="GPU-GROUPBY", cpu_seconds=0.0, gpu_seconds=0.5,
                      gpu_memory_bytes=100, max_degree=1),
            CostEvent(op="SORT", cpu_seconds=1.0, max_degree=1),
        ])

    def test_totals(self):
        profile = self._profile()
        assert profile.cpu_core_seconds == pytest.approx(3.0)
        assert profile.gpu_seconds == pytest.approx(0.5)
        assert profile.offloaded
        assert profile.peak_gpu_memory == 100

    def test_elapsed_serial(self):
        profile = self._profile()
        assert profile.elapsed_serial(2) == pytest.approx(1.0 + 0.5 + 1.0)

    def test_breakdown(self):
        breakdown = self._profile().breakdown()
        assert breakdown["GPU-GROUPBY"] == pytest.approx(0.5)
        assert breakdown["SCAN"] == pytest.approx(1.0)

    def test_ledger_accumulates(self):
        ledger = CostLedger()
        ledger.cpu("A", rows=10, cpu_seconds=1.0, max_degree=2)
        ledger.add(CostEvent(op="B"))
        ledger.extend([CostEvent(op="C"), CostEvent(op="D")])
        assert [e.op for e in ledger.events] == ["A", "B", "C", "D"]
