"""Unit tests for the three group-by kernels (sections 4.3.1-4.3.3)."""

import numpy as np
import pytest

from repro.blu.datatypes import int32, int64
from repro.blu.expressions import AggFunc
from repro.blu.operators.aggregate import group_encode
from repro.config import CostModel
from repro.gpu.kernels.groupby_biglock import GlobalLockGroupByKernel
from repro.gpu.kernels.groupby_regular import RegularGroupByKernel
from repro.gpu.kernels.groupby_shared import SharedMemoryGroupByKernel
from repro.gpu.kernels.request import GroupByRequest, PayloadSpec


@pytest.fixture()
def cost():
    return CostModel()


def make_request(n_rows=50_000, n_groups=500, n_aggs=2, seed=0,
                 key_bits=64):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_groups, n_rows).astype(np.int64)
    payloads = [PayloadSpec(int64(), AggFunc.SUM)] * n_aggs
    return GroupByRequest(keys=keys, key_bits=key_bits, payloads=payloads,
                          estimated_groups=n_groups)


ALL_KERNELS = [RegularGroupByKernel, SharedMemoryGroupByKernel,
               GlobalLockGroupByKernel]


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_matches_cpu_reference(self, kernel_cls, cost):
        request = make_request()
        result = kernel_cls(cost).run(request)
        ref_index, _, ref_groups = group_encode([request.keys])
        assert result.n_groups == ref_groups
        assert np.array_equal(result.group_index, ref_index)

    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_single_group(self, kernel_cls, cost):
        request = GroupByRequest(
            keys=np.zeros(1000, dtype=np.int64), key_bits=32,
            payloads=[PayloadSpec(int32(), AggFunc.COUNT)],
            estimated_groups=1)
        result = kernel_cls(cost).run(request)
        assert result.n_groups == 1
        assert (result.group_index == 0).all()

    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_all_distinct(self, kernel_cls, cost):
        keys = np.arange(5000, dtype=np.int64)
        request = GroupByRequest(
            keys=keys, key_bits=64,
            payloads=[PayloadSpec(int64(), AggFunc.SUM)],
            estimated_groups=5000)
        result = kernel_cls(cost).run(request)
        assert result.n_groups == 5000


class TestKernelCostProperties:
    def test_shared_kernel_fastest_for_tiny_groups(self, cost):
        """Section 4.3.2: kernel 2 wins on small group counts."""
        request = make_request(n_rows=200_000, n_groups=12)
        t1 = RegularGroupByKernel(cost).run(request).kernel_seconds
        t2 = SharedMemoryGroupByKernel(cost).run(request).kernel_seconds
        assert t2 < t1

    def test_biglock_wins_for_many_aggs(self, cost):
        """Section 4.3.3: kernel 3 wins past the agg-count threshold."""
        request = make_request(n_rows=200_000, n_groups=5000, n_aggs=8)
        t1 = RegularGroupByKernel(cost).run(request).kernel_seconds
        t3 = GlobalLockGroupByKernel(cost).run(request).kernel_seconds
        assert t3 < t1

    def test_regular_wins_for_few_aggs(self, cost):
        request = make_request(n_rows=200_000, n_groups=5000, n_aggs=1)
        t1 = RegularGroupByKernel(cost).run(request).kernel_seconds
        t3 = GlobalLockGroupByKernel(cost).run(request).kernel_seconds
        assert t1 < t3

    def test_wide_keys_cost_more(self, cost):
        narrow = make_request(key_bits=64)
        wide = make_request(key_bits=128)
        t_narrow = RegularGroupByKernel(cost).run(narrow).kernel_seconds
        t_wide = RegularGroupByKernel(cost).run(wide).kernel_seconds
        assert t_wide > t_narrow

    def test_shared_capacity_respects_entry_width(self, cost):
        kernel = SharedMemoryGroupByKernel(cost)
        thin = make_request(n_aggs=1)
        wide = make_request(n_aggs=8)
        assert kernel.shared_capacity_groups(thin) > \
            kernel.shared_capacity_groups(wide)

    def test_shared_fits_predicate(self, cost):
        kernel = SharedMemoryGroupByKernel(cost)
        small = make_request(n_groups=100)
        big = make_request(n_rows=10_000, n_groups=10_000)
        assert kernel.fits(small)
        assert not kernel.fits(big)

    def test_shared_kernel_counts_flushes_when_overfull(self, cost):
        """A slice whose group count exceeds shared capacity must flush."""
        kernel = SharedMemoryGroupByKernel(cost, smx_count=2,
                                           shared_bytes=4 * 1024)
        request = make_request(n_rows=60_000, n_groups=3000)
        result = kernel.run(request)
        assert result.stats["flushes"] > 0

    def test_table_bytes_scale_with_estimate(self, cost):
        kernel = RegularGroupByKernel(cost)
        small = make_request(n_groups=100)
        small.estimated_groups = 100
        big = make_request(n_groups=100)
        big.estimated_groups = 100_000
        assert kernel.table_bytes(big) > kernel.table_bytes(small)

    def test_stats_breakdown_present(self, cost):
        result = RegularGroupByKernel(cost).run(make_request())
        for key in ("probes", "fill_ratio", "init_seconds",
                    "insert_seconds", "agg_seconds"):
            assert key in result.stats
        assert result.kernel_seconds == pytest.approx(
            result.stats["init_seconds"] + result.stats["insert_seconds"]
            + result.stats["agg_seconds"])
