"""Unit tests for the device memory reservation unit (section 2.1.1)."""

import pytest

from repro.errors import DeviceMemoryError, ReservationError
from repro.gpu.memory import DeviceMemoryManager


@pytest.fixture()
def mm():
    return DeviceMemoryManager(capacity_bytes=1000)


class TestReservation:
    def test_reserve_and_release(self, mm):
        r = mm.reserve(400, tag="job1")
        assert mm.reserved == 400
        assert mm.free == 600
        mm.release(r)
        assert mm.free == 1000

    def test_try_reserve_fails_over_capacity(self, mm):
        assert mm.try_reserve(1001) is None
        assert mm.reserved == 0

    def test_concurrent_reservations_respect_capacity(self, mm):
        r1 = mm.reserve(600)
        assert mm.try_reserve(600) is None       # would overcommit
        r2 = mm.reserve(400)
        assert mm.free == 0
        mm.release(r1)
        assert mm.can_reserve(600)
        mm.release(r2)

    def test_reserve_raises_with_detail(self, mm):
        mm.reserve(900)
        with pytest.raises(ReservationError, match="only 100"):
            mm.reserve(200)

    def test_negative_rejected(self, mm):
        with pytest.raises(ValueError):
            mm.try_reserve(-1)

    def test_double_release_rejected(self, mm):
        r = mm.reserve(10)
        mm.release(r)
        with pytest.raises(ReservationError):
            mm.release(r)

    def test_peak_tracking(self, mm):
        r1 = mm.reserve(700)
        mm.release(r1)
        mm.reserve(100)
        assert mm.peak_reserved == 700


class TestAllocationWithinReservation:
    def test_allocate_up_to_reservation(self, mm):
        r = mm.reserve(100)
        mm.allocate(r, 60)
        mm.allocate(r, 40)
        assert r.available == 0

    def test_exceeding_reservation_is_the_oom_path(self, mm):
        """Allocating past the reservation is exactly the mid-kernel OOM
        the reservation discipline exists to prevent."""
        r = mm.reserve(100)
        with pytest.raises(DeviceMemoryError):
            mm.allocate(r, 101)

    def test_allocate_against_released_reservation(self, mm):
        r = mm.reserve(100)
        mm.release(r)
        with pytest.raises(ReservationError):
            mm.allocate(r, 10)


class TestGrow:
    def test_grow_succeeds_with_free_memory(self, mm):
        r = mm.reserve(100)
        assert mm.grow(r, 200)
        assert r.nbytes == 300
        assert mm.reserved == 300

    def test_grow_fails_when_full(self, mm):
        r = mm.reserve(900)
        assert not mm.grow(r, 200)
        assert r.nbytes == 900


class TestUsageLog:
    def test_samples_record_reserved_bytes(self, mm):
        mm.record_usage(0.0)
        r = mm.reserve(500)
        mm.record_usage(1.0)
        mm.release(r)
        mm.record_usage(2.0)
        assert mm.usage_log == [(0.0, 0), (1.0, 500), (2.0, 0)]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DeviceMemoryManager(0)
