"""Unit tests for the GPU hash table: layout, mask (Table 1), insertion."""

import numpy as np
import pytest

from repro.blu.datatypes import decimal, float64, int32, int64
from repro.blu.expressions import AggFunc
from repro.blu.operators.aggregate import group_encode
from repro.errors import HashTableOverflowError
from repro.gpu.kernels.hashtable import (
    GpuHashTable,
    HashTableLayout,
    combine_keys,
)
from repro.gpu.kernels.request import PayloadSpec


class TestTable1Mask:
    def test_paper_example_mask(self):
        """Table 1: SELECT SUM(C1), MAX(C2), MIN(C3) ... GROUP BY C1 with
        C1, C2 64-bit and C3 32-bit integers."""
        layout = HashTableLayout.build(64, [
            PayloadSpec(int64(), AggFunc.SUM),
            PayloadSpec(int64(), AggFunc.MAX),
            PayloadSpec(int32(), AggFunc.MIN),
        ])
        mask = layout.mask_row()
        assert mask[0] == "F" * 16
        assert mask[1] == 0
        assert mask[2] == -9223372036854775808
        assert mask[3] == 2147483647
        assert mask[4] == 0                   # padding
        assert layout.padding_bytes == 4

    def test_alignment_is_power_of_two(self):
        for payloads in ([PayloadSpec(int32(), AggFunc.SUM)],
                         [PayloadSpec(int64(), AggFunc.MAX)] * 3,
                         [PayloadSpec(float64(), AggFunc.MIN)] * 5):
            layout = HashTableLayout.build(64, payloads)
            assert layout.entry_bytes % 4 == 0
            raw = sum(f.width_bytes for f in layout.fields)
            assert layout.entry_bytes == raw

    def test_float_init_values(self):
        layout = HashTableLayout.build(32, [
            PayloadSpec(float64(), AggFunc.MAX),
            PayloadSpec(float64(), AggFunc.MIN),
        ])
        mask = layout.mask_row()
        assert mask[1] == -np.inf
        assert mask[2] == np.inf

    def test_count_initialises_to_zero(self):
        layout = HashTableLayout.build(32,
                                       [PayloadSpec(int64(), AggFunc.COUNT)])
        assert layout.mask_row()[1] == 0

    def test_decimal128_width(self):
        layout = HashTableLayout.build(
            64, [PayloadSpec(decimal(31, 2), AggFunc.SUM)])
        field = layout.fields[1]
        assert field.width_bytes == 16

    def test_table_bytes(self):
        layout = HashTableLayout.build(64,
                                       [PayloadSpec(int64(), AggFunc.SUM)])
        assert layout.table_bytes(100) == layout.entry_bytes * 100


class TestCombineKeys:
    def test_single_key_passthrough(self):
        arr = np.array([5, 6, 7], dtype=np.int64)
        combined, exact = combine_keys([arr])
        assert exact
        assert np.array_equal(combined, arr)

    def test_exact_packing_matches_group_encode(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 1000, 5000)
        b = rng.integers(-50, 50, 5000)
        c = rng.integers(0, 12, 5000)
        combined, exact = combine_keys([a, b, c])
        assert exact
        gi1, _, n1 = group_encode([combined])
        gi2, _, n2 = group_encode([a, b, c])
        assert n1 == n2
        assert np.array_equal(gi1, gi2)

    def test_wide_keys_fall_back_to_murmur(self):
        rng = np.random.default_rng(6)
        a = rng.integers(0, 2**40, 1000)
        b = rng.integers(0, 2**40, 1000)
        combined, exact = combine_keys([a, b])
        assert not exact
        gi1, _, n1 = group_encode([combined])
        gi2, _, n2 = group_encode([a, b])
        assert n1 == n2                      # no collision at this scale

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_keys([])


class TestInsertion:
    def _payloads(self):
        return [PayloadSpec(int64(), AggFunc.SUM)]

    def test_groups_match_reference(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 300, 20_000).astype(np.int64)
        table = GpuHashTable.sized_for(300, 64, self._payloads())
        row_slot, stats = table.insert(keys)
        assert stats.groups == len(np.unique(keys))
        # Same slot iff same key.
        gi, _, n = group_encode([row_slot])
        gi_ref, _, n_ref = group_encode([keys])
        assert n == n_ref
        assert np.array_equal(gi, gi_ref)

    def test_probe_count_grows_with_fill_ratio(self):
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 10_000, 50_000).astype(np.int64)
        roomy = GpuHashTable.sized_for(10_000, 64, self._payloads(),
                                       headroom=4.0)
        tight = GpuHashTable.sized_for(10_000, 64, self._payloads(),
                                       headroom=1.15)
        _, stats_roomy = roomy.insert(keys)
        _, stats_tight = tight.insert(keys)
        assert stats_tight.probes > stats_roomy.probes

    def test_overflow_when_estimate_too_small(self):
        """Section 4.2's error-detection code path."""
        keys = np.arange(5000, dtype=np.int64)
        table = GpuHashTable.sized_for(100, 64, self._payloads())
        with pytest.raises(HashTableOverflowError):
            table.insert(keys)

    def test_exact_fit_does_not_overflow(self):
        keys = np.arange(64, dtype=np.int64)
        table = GpuHashTable(slots=64, key_bits=64,
                             layout=HashTableLayout.build(64, self._payloads()))
        row_slot, stats = table.insert(keys)
        assert stats.groups == 64
        assert stats.fill_ratio == 1.0

    def test_sentinel_key_remapped(self):
        keys = np.array([np.iinfo(np.int64).min, 0, 1], dtype=np.int64)
        table = GpuHashTable.sized_for(8, 64, self._payloads())
        row_slot, stats = table.insert(keys)
        assert stats.groups == 3

    def test_sequential_keys_spread_uniformly(self):
        """Serial surrogate keys (ticket numbers, item ids) must not
        collapse onto a slot subgroup — the join-kernel pathology found
        during development."""
        keys = np.arange(1, 2546, dtype=np.int64)
        table = GpuHashTable.sized_for(2545, 64, self._payloads())
        slots = table._slot_of(keys)
        distinct = len(np.unique(slots))
        assert distinct > 0.6 * len(keys)       # near-uniform occupancy
        _, stats = table.insert(keys)
        assert stats.probes < 3 * len(keys)

    def test_structured_keys_no_probe_explosion(self):
        """Packed composite keys must not cluster (the C4 pathology)."""
        date = np.repeat(np.arange(2000), 100)
        store = np.tile(np.arange(100), 2000)
        combined, _ = combine_keys([date, store])
        table = GpuHashTable.sized_for(200_000, 64,
                                       self._payloads(), headroom=1.5)
        _, stats = table.insert(combined)
        assert stats.probes < 5 * len(combined)

    def test_deterministic(self):
        keys = np.random.default_rng(10).integers(0, 99, 1000).astype(np.int64)
        t1 = GpuHashTable.sized_for(99, 64, self._payloads())
        t2 = GpuHashTable.sized_for(99, 64, self._payloads())
        s1, st1 = t1.insert(keys)
        s2, st2 = t2.insert(keys)
        assert np.array_equal(s1, s2)
        assert st1.probes == st2.probes
