"""Unit tests for the out-of-core partition planner (repro.gpu.partition)."""

import pytest

from repro.config import CostModel, GpuSpec, HostSpec, Thresholds
from repro.gpu.partition import (
    PartitionStreamState,
    groupby_working_set_bytes,
    plan_groupby_partitions,
    plan_sort_partitions,
)
from repro.gpu.streams import PipelineSpec, StreamChunk, StreamPlan


COST = CostModel()
SPEC = GpuSpec()
HOST = HostSpec()
THRESHOLDS = Thresholds()


def groupby_plan(rows=200_000, groups=2_000, capacity=1_000_000, **kw):
    args = dict(rows=rows, estimated_groups=groups, num_keys=1, num_aggs=3,
                thresholds=THRESHOLDS, cost=COST, spec=SPEC, host=HOST,
                degree=48, capacity_bytes=capacity, max_partitions=64,
                devices=2)
    args.update(kw)
    return plan_groupby_partitions(**args)


def sort_plan(rows=200_000, capacity=1_000_000, **kw):
    args = dict(rows=rows, device_bytes_per_row=16, staged_bytes_per_row=8,
                cost=COST, spec=SPEC, host=HOST, degree=48,
                capacity_bytes=capacity, max_partitions=64, devices=2)
    args.update(kw)
    return plan_sort_partitions(**args)


class TestGroupbyPlanner:
    def test_over_memory_input_splits(self):
        plan = groupby_plan()
        assert plan is not None
        assert plan.partitions >= 2
        assert plan.working_set_bytes > plan.capacity_bytes
        # Every partition's own working set must fit the card.
        groups_p = -(-2_000 // plan.partitions)
        assert groupby_working_set_bytes(
            plan.partition_rows, groups_p, 3) <= plan.capacity_bytes

    def test_partitions_respect_t3(self):
        thresholds = Thresholds(t3_max_rows=10_000)
        plan = groupby_plan(capacity=10**12, thresholds=thresholds)
        assert plan is not None
        assert plan.partition_rows <= 10_000

    def test_declines_when_nothing_fits(self):
        # Even max_partitions slices cannot squeeze under a 4 KB card.
        assert groupby_plan(capacity=4 * 1024) is None

    def test_declines_on_degenerate_inputs(self):
        assert groupby_plan(rows=0) is None
        assert groupby_plan(capacity=0) is None
        assert groupby_plan(max_partitions=0) is None

    def test_costs_both_sides(self):
        plan = groupby_plan()
        assert plan.gpu_seconds > 0.0
        assert plan.cpu_seconds > 0.0
        assert 0.0 < plan.merge_seconds < plan.gpu_seconds
        assert str(plan.partitions) in plan.reason

    def test_beats_cpu_reflects_estimates(self):
        plan = groupby_plan()
        assert plan.beats_cpu == (plan.gpu_seconds < plan.cpu_seconds)


class TestSortPlanner:
    def test_over_memory_job_splits(self):
        plan = sort_plan()
        assert plan is not None
        assert plan.partitions >= 2
        assert plan.partition_rows * 16 <= plan.capacity_bytes

    def test_declines_when_no_slice_fits(self):
        # 64 slices of >3k rows each still need >48 KB of device memory.
        assert sort_plan(capacity=1024) is None

    def test_merge_priced_only_when_split(self):
        wide = sort_plan(rows=50_000, capacity=10**12)
        assert wide is None or wide.partitions == 1
        split = sort_plan()
        assert split.merge_seconds > 0.0


class TestPartitionStreamState:
    CHUNKS = [
        StreamChunk(bytes_in=1000, bytes_out=500, kernel_seconds=3e-4,
                    h2d_seconds=1e-4, d2h_seconds=5e-5),
        StreamChunk(bytes_in=1000, bytes_out=500, kernel_seconds=2e-4,
                    h2d_seconds=2e-4, d2h_seconds=5e-5),
        StreamChunk(bytes_in=1000, bytes_out=500, kernel_seconds=4e-4,
                    h2d_seconds=1e-4, d2h_seconds=1e-4),
        StreamChunk(bytes_in=1000, bytes_out=500, kernel_seconds=1e-4,
                    h2d_seconds=3e-4, d2h_seconds=5e-5),
    ]

    def test_exposed_deltas_sum_to_streamed_makespan(self):
        """The incremental recurrence must agree with StreamPlan.schedule:
        per-partition exposed contributions on one device sum exactly to
        the overlapped makespan of the same chunks."""
        plan = StreamPlan(
            chunks=tuple(self.CHUNKS),
            pipeline=PipelineSpec(depth=len(self.CHUNKS)),
            serial_in=sum(c.h2d_seconds for c in self.CHUNKS),
            serial_kernel=sum(c.kernel_seconds for c in self.CHUNKS),
            serial_out=sum(c.d2h_seconds for c in self.CHUNKS),
        )
        want = plan.schedule().total_seconds
        state = PartitionStreamState()
        got = sum(
            state.advance(0, c.h2d_seconds, c.kernel_seconds, c.d2h_seconds)
            for c in self.CHUNKS
        )
        assert got == pytest.approx(want, rel=1e-12)

    def test_devices_tracked_independently(self):
        state = PartitionStreamState()
        a = state.advance(0, 1e-4, 3e-4, 5e-5)
        b = state.advance(1, 1e-4, 3e-4, 5e-5)
        assert a == pytest.approx(b)          # fresh pipelines, same cost

    def test_exposed_never_negative(self):
        state = PartitionStreamState()
        for _ in range(8):
            assert state.advance(0, 1e-4, 1e-6, 1e-4) >= 0.0

    def test_overlap_hides_copies(self):
        """With kernels dominating, steady-state exposure approaches the
        kernel time: copies hide under neighbouring kernels."""
        state = PartitionStreamState()
        state.advance(0, 1e-4, 1e-3, 1e-4)
        exposed = [state.advance(0, 1e-4, 1e-3, 1e-4) for _ in range(6)]
        for delta in exposed:
            assert delta == pytest.approx(1e-3, rel=1e-6)
