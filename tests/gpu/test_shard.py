"""Unit tests for shard maps and the sharded-execution planner."""

import numpy as np
import pytest

from repro.config import CostModel, GpuSpec, HostSpec
from repro.core.pathselect import select_sharded_path
from repro.gpu.interconnect import Interconnect
from repro.gpu.shard import (
    ShardError,
    ShardMap,
    build_shard_map,
    hash_shard_assignment,
    home_devices,
    plan_sharded,
    range_shard_bounds,
)
from repro.obs.tracing import Tracer


class TestShardMap:
    def test_validation(self):
        with pytest.raises(ShardError):
            ShardMap("sales", "round-robin", (0, 1))
        with pytest.raises(ShardError):
            ShardMap("sales", "hash", ())

    def test_device_for_wraps(self):
        shard_map = build_shard_map("sales", [2, 5], kind="range")
        assert shard_map.shard_count == 2
        assert shard_map.device_for(0) == 2
        assert shard_map.device_for(1) == 5
        assert shard_map.device_for(2) == 2

    def test_without_device_redistributes(self):
        shard_map = build_shard_map("sales", [0, 1, 2])
        rebalanced = shard_map.without_device(1)
        assert rebalanced.devices == (0, 2)
        assert rebalanced.table == "sales" and rebalanced.kind == "hash"

    def test_without_last_device_routes_to_cpu(self):
        shard_map = build_shard_map("sales", [3])
        assert shard_map.without_device(3).devices == (-1,)


class TestRowSplitHelpers:
    def test_hash_assignment_is_disjoint_and_stable(self):
        hashes = np.arange(1000, dtype=np.uint64) * np.uint64(2654435761)
        assignment = hash_shard_assignment(hashes, 4)
        assert assignment.min() >= 0 and assignment.max() < 4
        # Same hashes, same shards: the split is a pure function.
        np.testing.assert_array_equal(
            assignment, hash_shard_assignment(hashes, 4))

    def test_range_bounds_cover_all_rows(self):
        bounds = range_shard_bounds(1003, 4)
        assert bounds[0] == 0 and bounds[-1] == 1003
        assert len(bounds) == 5
        widths = np.diff(bounds)
        assert widths.min() >= 0 and widths.sum() == 1003


class _StubScheduler:
    def __init__(self, healthy):
        self._healthy = list(healthy)

    def healthy_device_ids(self):
        return list(self._healthy)


class _StubCatalog:
    def __init__(self, maps=()):
        self._maps = list(maps)

    def shard_maps(self):
        return list(self._maps)


class TestHomeDevices:
    def test_defaults_to_every_healthy_device(self):
        assert home_devices(_StubScheduler([0, 1, 2]), None, "sales") \
            == (0, 1, 2)

    def test_registered_map_pins_placement(self):
        catalog = _StubCatalog([build_shard_map("sales", [1, 3])])
        scheduler = _StubScheduler([0, 1, 2, 3])
        assert home_devices(scheduler, catalog, "sales") == (1, 3)

    def test_intermediates_inherit_base_table_map(self):
        catalog = _StubCatalog([build_shard_map("sales", [1, 3])])
        scheduler = _StubScheduler([0, 1, 2, 3])
        assert home_devices(scheduler, catalog, "sales__probe") == (1, 3)

    def test_unhealthy_pinned_devices_fall_back(self):
        catalog = _StubCatalog([build_shard_map("sales", [1, 3])])
        # Only one pinned device survives: the map no longer describes a
        # usable split, so every healthy device hosts a shard instead.
        scheduler = _StubScheduler([0, 1, 2])
        assert home_devices(scheduler, catalog, "sales") == (0, 1, 2)


def make_plan(devices=(0, 1, 2, 3), *, rows=1_000_000,
              nvlink=True, **overrides):
    spec = GpuSpec()
    interconnect = Interconnect(
        link_bandwidth=spec.pcie_pinned_bw,
        switch_bandwidth=96.0e9,
        setup_overhead=spec.transfer_setup_overhead,
        nvlink_enabled=nvlink,
    )
    kwargs = dict(
        operator="groupby",
        rows=rows,
        staged_bytes=rows * 16,
        result_bytes=rows,
        kernel_seconds=0.040,
        exchange_bytes=rows,
        merge_core_seconds=0.001,
        devices=tuple(devices),
        cost=CostModel(),
        spec=spec,
        host=HostSpec(),
        degree=32,
        interconnect=interconnect,
        cpu_seconds=0.100,
    )
    kwargs.update(overrides)
    return plan_sharded(**kwargs)


class TestPlanSharded:
    def test_declines_degenerate_splits(self):
        assert make_plan(devices=(0,)) is None          # one device
        assert make_plan(devices=()) is None            # no devices
        assert make_plan(rows=0) is None                # nothing to split
        assert make_plan(devices=(0, -1)) is None       # CPU-routed shard

    def test_kernel_heavy_job_beats_single_device(self):
        plan = make_plan()
        assert plan is not None and plan.shards == 4
        assert plan.beats_single and plan.beats_cpu
        assert plan.gpu_seconds < plan.single_seconds

    def test_more_devices_shrink_the_makespan(self):
        two = make_plan(devices=(0, 1))
        four = make_plan(devices=(0, 1, 2, 3))
        assert four.gpu_seconds < two.gpu_seconds

    def test_broadcast_and_replicated_work_ride_every_shard(self):
        base = make_plan()
        heavy = make_plan(broadcast_bytes=1 << 26,
                          replicated_kernel_seconds=0.010)
        # The replicated parts do not divide, so both rivals pay more —
        # but the sharded side pays them once *per shard wave*.
        assert heavy.gpu_seconds > base.gpu_seconds
        assert heavy.single_seconds > base.single_seconds

    def test_exchange_and_stall_are_reported(self):
        plan = make_plan(nvlink=False)
        assert plan.exchange_seconds > 0
        assert plan.stall_seconds >= 0
        assert plan.shard_rows == 250_000

    def test_nvlink_cheapens_the_exchange(self):
        meshed = make_plan(nvlink=True)
        bounced = make_plan(nvlink=False)
        assert meshed.exchange_seconds < bounced.exchange_seconds


class TestSelectShardedPath:
    def test_disabled_knob_keeps_whole_job(self):
        decision = select_sharded_path(
            operator="groupby", plan=make_plan(), enabled=False)
        assert not decision.shard
        assert "disabled" in decision.reason

    def test_no_plan_keeps_whole_job(self):
        decision = select_sharded_path(operator="groupby", plan=None)
        assert not decision.shard
        assert "healthy home devices" in decision.reason

    def test_winning_plan_shards(self):
        tracer = Tracer()
        decision = select_sharded_path(
            operator="groupby", plan=make_plan(), tracer=tracer)
        assert decision.shard
        assert decision.shards == 4 and decision.devices == (0, 1, 2, 3)
        (instant,) = [s for s in tracer.spans
                      if s.name == "pathselect.shard"]
        assert instant.attributes["shard"] is True
        assert instant.attributes["devices"] == [0, 1, 2, 3]

    def test_losing_plan_explains_itself(self):
        # A tiny kernel makes the split overhead-bound: the sharded
        # estimate loses to the single-device run and the verdict says
        # which rival won.
        plan = make_plan(rows=1000, staged_bytes=16_000, result_bytes=1000,
                         kernel_seconds=1e-6, exchange_bytes=1000,
                         cpu_seconds=10.0)
        tracer = Tracer()
        decision = select_sharded_path(
            operator="sort", plan=plan, tracer=tracer)
        assert not decision.shard
        assert "single-device" in decision.reason
        (instant,) = [s for s in tracer.spans
                      if s.name == "pathselect.shard"]
        assert instant.attributes["shard"] is False

    def test_plan_that_loses_to_cpu_keeps_whole_job(self):
        plan = make_plan(cpu_seconds=1e-9)
        decision = select_sharded_path(operator="join", plan=plan)
        assert not decision.shard
        assert "cpu" in decision.reason
