"""Fusion planner and fused execution path (see docs/fusion.md).

Covers the three layers of the fusion contract: chain recognition over
compiled plans, the three-gate fuse/no-fuse decision, and the fused
launch itself — including every degradation seam, the observability
surface, and the headline bit-identity guarantee under arbitrary knobs
and fault plans.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.blu import BluEngine, Catalog, Schema, Table
from repro.blu.datatypes import float64, int32, varchar
from repro.blu.plan import FilterNode, GroupByNode, JoinNode, ScanNode
from repro.blu.sql import parse_query
from repro.config import paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.core.pathselect import ExecutionPath, PathDecision, select_fused_path
from repro.faults import FaultPlan, FaultRule
from repro.gpu.fusion import estimate_chain, find_fusable_chain
from repro.obs.tracing import Tracer
from tests.conftest import tables_equal


def fused_config(fusion_enabled=True, faults=None, pipeline_depth=4,
                 chunk_bytes=1 << 20, cache_fraction=None):
    """Unit-test scale: thresholds low enough that 50k-row joins offload
    and six-group aggregates pass the T2 gate."""
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     t2_min_groups=4, sort_min_rows=5_000)
    kwargs = dict(thresholds=thresholds, fusion_enabled=fusion_enabled,
                  faults=faults, pipeline_depth=pipeline_depth,
                  chunk_bytes=chunk_bytes)
    if cache_fraction is not None:
        kwargs["cache_fraction"] = cache_fraction
    return dataclasses.replace(config, **kwargs)


def make_catalog(n=50_000, seed=42, dup_dim_keys=False):
    """Fact + two dimensions, enough for a two-join fusable chain.

    ``dup_dim_keys`` duplicates the store dimension's key column — the
    documented out-of-scope input that must degrade the chain to the
    per-operator path, never corrupt it.
    """
    rng = np.random.default_rng(seed)
    fact = Table.from_pydict("sales", Schema.of(
        ("s_item", int32()), ("s_store", int32()),
        ("s_qty", int32()), ("s_paid", float64()),
    ), {
        "s_item": rng.integers(1, 40, n).tolist(),
        "s_store": rng.integers(1, 13, n).tolist(),
        "s_qty": rng.integers(1, 100, n).tolist(),
        "s_paid": np.round(rng.random(n) * 500, 2).tolist(),
    })
    store_ids = list(range(1, 13))
    if dup_dim_keys:
        store_ids = store_ids[:6] * 2            # every key twice
    states = ["CA", "NY", "TX", "WA", "IL", "FL"]
    stores = Table.from_pydict("stores", Schema.of(
        ("st_id", int32()), ("st_state", varchar(2)),
    ), {
        "st_id": store_ids,
        "st_state": [states[i % 6] for i in range(12)],
    })
    items = Table.from_pydict("items", Schema.of(
        ("i_id", int32()), ("i_class", varchar(4)),
    ), {
        "i_id": list(range(1, 40)),
        "i_class": [f"c{i % 5}" for i in range(39)],
    })
    catalog = Catalog()
    for table in (fact, stores, items):
        catalog.register(table)
    return catalog


ONE_JOIN_SQL = ("SELECT st_state, SUM(s_paid) AS paid, COUNT(*) AS c "
                "FROM sales JOIN stores ON s_store = st_id "
                "GROUP BY st_state")
TWO_JOIN_SQL = ("SELECT st_state, i_class, SUM(s_paid) AS paid "
                "FROM sales JOIN stores ON s_store = st_id "
                "JOIN items ON s_item = i_id "
                "GROUP BY st_state, i_class")


def groupby_of(plan):
    node = plan
    while node is not None and not isinstance(node, GroupByNode):
        node = node.children[0] if node.children else None
    assert node is not None, "plan has no group-by"
    return node


# ---------------------------------------------------------------------------
# Chain recognition
# ---------------------------------------------------------------------------


class TestChainRecognition:
    def setup_method(self):
        self.catalog = make_catalog(n=500)

    def test_single_join_chain(self):
        node = groupby_of(parse_query(ONE_JOIN_SQL, catalog=self.catalog))
        chain = find_fusable_chain(node)
        assert chain is not None
        assert chain.stages == 2
        assert len(chain.joins) == 1
        assert isinstance(chain.probe, ScanNode)
        assert chain.probe.table_name == "sales"
        assert chain.builds[0].table_name == "stores"

    def test_two_join_chain_orders_builds_bottom_up(self):
        node = groupby_of(parse_query(TWO_JOIN_SQL, catalog=self.catalog))
        chain = find_fusable_chain(node)
        assert chain is not None
        assert chain.stages == 3
        assert [j.right.table_name for j in chain.joins] == \
               [b.table_name for b in chain.builds]
        # Bottom-up: the innermost join (stores) runs first.
        assert chain.builds[0].table_name == "stores"
        assert chain.builds[1].table_name == "items"

    def test_residual_filter_joins_the_spine(self):
        # A cross-table predicate cannot push below the join, so it
        # stays as a FilterNode on the chain's spine.
        sql = ("SELECT st_state, SUM(s_paid) AS paid "
               "FROM sales JOIN stores ON s_store = st_id "
               "WHERE s_paid > st_id GROUP BY st_state")
        node = groupby_of(parse_query(sql, catalog=self.catalog))
        assert isinstance(node.child, FilterNode)
        chain = find_fusable_chain(node)
        assert chain is not None
        assert chain.stages == 3
        assert isinstance(chain.spine[0], FilterNode)
        assert isinstance(chain.spine[1], JoinNode)

    def test_no_join_means_no_chain(self):
        sql = "SELECT s_store, SUM(s_paid) AS p FROM sales GROUP BY s_store"
        node = groupby_of(parse_query(sql, catalog=self.catalog))
        assert find_fusable_chain(node) is None

    def test_keyless_aggregate_means_no_chain(self):
        node = groupby_of(parse_query(ONE_JOIN_SQL, catalog=self.catalog))
        keyless = GroupByNode(node.child, keys=(), aggs=node.aggs)
        assert find_fusable_chain(keyless) is None

    def test_estimates_price_both_alternatives(self):
        engine = BluEngine(self.catalog)
        plan = parse_query(TWO_JOIN_SQL, catalog=self.catalog)
        engine.optimizer.annotate(plan)
        chain = find_fusable_chain(groupby_of(plan))
        estimate = estimate_chain(chain, fused_config(), self.catalog,
                                  degree=8)
        assert estimate.fused_seconds > 0
        assert estimate.unfused_seconds > 0
        assert estimate.fused_bytes > 0
        # Owner-granularity staging must undercut per-op GPU transfers.
        assert estimate.fused_bytes < estimate.per_op_gpu_bytes


# ---------------------------------------------------------------------------
# Decision gates
# ---------------------------------------------------------------------------


GPU_VERDICT = PathDecision(ExecutionPath.GPU, "test")
CPU_VERDICT = PathDecision(ExecutionPath.CPU_SMALL, "test")


class TestDecisionGates:
    def _decide(self, verdict=GPU_VERDICT, fused_s=1e-3, unfused_s=2e-3,
                fused_b=100, per_op_b=200, tracer=None):
        return select_fused_path(
            stages=3, groupby_decision=verdict, fused_seconds=fused_s,
            unfused_seconds=unfused_s, fused_bytes=fused_b,
            per_op_gpu_bytes=per_op_b, tracer=tracer)

    def test_cpu_verdict_blocks_fusion(self):
        decision = self._decide(verdict=CPU_VERDICT)
        assert not decision.fuse
        assert "per-operator path" in decision.reason

    def test_slower_fused_time_blocks_fusion(self):
        decision = self._decide(fused_s=3e-3, unfused_s=2e-3)
        assert not decision.fuse
        assert "would not pay" in decision.reason

    def test_more_bytes_blocks_fusion(self):
        decision = self._decide(fused_b=300, per_op_b=200)
        assert not decision.fuse
        assert "more over PCIe" in decision.reason

    def test_all_gates_open_fuses(self):
        decision = self._decide()
        assert decision.fuse
        assert "3-stage chain" in decision.reason
        assert "elides 100 transfer bytes" in decision.reason

    def test_decision_emits_pathselect_instant(self):
        tracer = Tracer()
        with tracer.span("query"):
            self._decide(tracer=tracer)
            self._decide(verdict=CPU_VERDICT, tracer=tracer)
        instants = [s for s in tracer.spans if s.name == "pathselect.fused"]
        assert len(instants) == 2
        assert instants[0].attributes["fuse"] is True
        assert instants[1].attributes["fuse"] is False


# ---------------------------------------------------------------------------
# Fused execution
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fusion_catalog():
    return make_catalog()


@pytest.fixture(scope="module")
def cpu_answers(fusion_catalog):
    engine = BluEngine(fusion_catalog)
    return {sql: engine.execute_sql(sql).table
            for sql in (ONE_JOIN_SQL, TWO_JOIN_SQL)}


class TestFusedExecution:
    def test_results_bit_identical_to_cpu(self, fusion_catalog, cpu_answers):
        engine = GpuAcceleratedEngine(fusion_catalog, config=fused_config())
        for sql in (ONE_JOIN_SQL, TWO_JOIN_SQL):
            assert tables_equal(engine.execute_sql(sql).table,
                                cpu_answers[sql])

    def test_chain_runs_as_one_launch(self, fusion_catalog):
        engine = GpuAcceleratedEngine(fusion_catalog, config=fused_config())
        engine.execute_sql(TWO_JOIN_SQL, query_id="fused")
        spans = engine.tracer.spans
        fused = [s for s in spans if s.name == "op.fused"]
        assert len(fused) == 1
        assert fused[0].attributes["stages"] == 3
        assert fused[0].attributes["joins"] == 2
        # One gpu.launch for the whole chain, named for its stages.
        launches = [s for s in spans if s.name == "gpu.launch"
                    and str(s.attributes.get("kernel", "")).startswith(
                        "fused:")]
        assert len(launches) == 1
        kernel = launches[0].attributes["kernel"]
        assert kernel.count("hash_join") == 2
        assert launches[0].attributes["fused_stages"] == 3

    def test_filter_stage_fuses_and_matches_cpu(self, fusion_catalog):
        # Residual (cross-table) predicate: a FilterNode rides the spine
        # and executes as a device scan stage inside the launch.  The OR
        # chain keeps the estimated selectivity high enough that fusion
        # still wins the bytes gate (low-selectivity spine filters favour
        # the per-operator path, which ships post-filter granularity).
        sql = ("SELECT st_state, i_class, SUM(s_paid) AS paid FROM sales "
               "JOIN stores ON s_store = st_id JOIN items ON s_item = i_id "
               "WHERE s_paid > st_id OR s_qty > st_id OR s_item > st_id "
               "GROUP BY st_state, i_class")
        want = BluEngine(fusion_catalog).execute_sql(sql).table
        engine = GpuAcceleratedEngine(fusion_catalog, config=fused_config())
        got = engine.execute_sql(sql, query_id="filter-stage")
        assert tables_equal(got.table, want)
        fused = next(s for s in engine.tracer.spans if s.name == "op.fused")
        assert fused.attributes["stages"] == 4
        launch = next(s for s in engine.tracer.spans
                      if s.name == "gpu.launch"
                      and "fused:" in str(s.attributes.get("kernel", "")))
        assert "scan" in launch.attributes["kernel"]

    def test_low_selectivity_spine_filter_declines_on_bytes(
            self, fusion_catalog, cpu_answers):
        # A single 0.33-selectivity residual filter makes the per-op
        # path's post-filter staging cheaper: the bytes gate must say no
        # and the per-operator chain must run instead, bit-identically.
        sql = ("SELECT st_state, SUM(s_paid) AS paid "
               "FROM sales JOIN stores ON s_store = st_id "
               "WHERE s_paid > st_id GROUP BY st_state")
        want = BluEngine(fusion_catalog).execute_sql(sql).table
        engine = GpuAcceleratedEngine(fusion_catalog, config=fused_config())
        got = engine.execute_sql(sql, query_id="decline")
        assert tables_equal(got.table, want)
        assert not any(s.name == "op.fused" for s in engine.tracer.spans)
        verdict = next(s for s in engine.tracer.spans
                       if s.name == "pathselect.fused")
        assert verdict.attributes["fuse"] is False
        assert "more over PCIe" in verdict.attributes["reason"]

    def test_fused_span_nests_inside_groupby_span(self, fusion_catalog):
        engine = GpuAcceleratedEngine(fusion_catalog, config=fused_config())
        engine.execute_sql(ONE_JOIN_SQL, query_id="nesting")
        by_id = {s.span_id: s for s in engine.tracer.spans}
        fused = next(s for s in engine.tracer.spans if s.name == "op.fused")
        assert by_id[fused.parent_id].name == "op.groupby"

    def test_fusion_metrics_and_decision(self, fusion_catalog):
        engine = GpuAcceleratedEngine(fusion_catalog, config=fused_config())
        engine.execute_sql(TWO_JOIN_SQL, query_id="metrics")
        registry = engine.monitor.registry
        assert registry.get("repro_fusion_chains_total").value == 1
        assert registry.get("repro_fusion_elided_bytes_total").value > 0
        decisions = [s.attributes for s in engine.tracer.spans
                     if s.name == "offload.decision"
                     and s.attributes.get("operator") == "fused"]
        assert decisions and decisions[0]["path"] == "gpu-fused"

    def test_groupby_span_keeps_kmv_refinement(self, fusion_catalog):
        """The fused launch's device-side KMV sketch lands on the
        op.groupby span exactly like the per-operator GPU path's."""
        engine = GpuAcceleratedEngine(fusion_catalog, config=fused_config())
        engine.execute_sql(ONE_JOIN_SQL, query_id="kmv")
        span = next(s for s in engine.tracer.spans
                    if s.name == "op.groupby")
        assert span.attributes["kmv_groups"] > 0
        assert span.attributes["kmv_relative_error"] >= 0.0

    def test_fusion_off_runs_per_operator(self, fusion_catalog, cpu_answers):
        engine = GpuAcceleratedEngine(
            fusion_catalog, config=fused_config(fusion_enabled=False))
        for sql in (ONE_JOIN_SQL, TWO_JOIN_SQL):
            assert tables_equal(engine.execute_sql(sql).table,
                                cpu_answers[sql])
        assert not any(s.name == "op.fused" for s in engine.tracer.spans)
        assert engine.monitor.registry.get(
            "repro_fusion_chains_total") is None

    def test_duplicate_build_keys_degrade_not_corrupt(self):
        catalog = make_catalog(dup_dim_keys=True)
        want = BluEngine(catalog).execute_sql(ONE_JOIN_SQL).table
        engine = GpuAcceleratedEngine(catalog, config=fused_config())
        got = engine.execute_sql(ONE_JOIN_SQL, query_id="dup").table
        assert tables_equal(got, want)
        decisions = [s.attributes for s in engine.tracer.spans
                     if s.name == "offload.decision"
                     and s.attributes.get("operator") == "fused"]
        degraded = [d for d in decisions if d["path"] == "fused-degraded"]
        assert degraded
        assert "not unique" in degraded[0]["reason"]

    @pytest.mark.parametrize("site", ["launch", "reserve", "pinned",
                                      "alloc"])
    def test_injected_faults_degrade_bit_identically(self, fusion_catalog,
                                                     cpu_answers, site):
        plan = FaultPlan(rules=(FaultRule(site=site, probability=1.0),),
                         seed=3)
        engine = GpuAcceleratedEngine(fusion_catalog,
                                      config=fused_config(faults=plan))
        got = engine.execute_sql(TWO_JOIN_SQL, query_id=f"fault-{site}")
        assert tables_equal(got.table, cpu_answers[TWO_JOIN_SQL])


# ---------------------------------------------------------------------------
# Bit-identity property: fusion is invisible in the answers
# ---------------------------------------------------------------------------


@st.composite
def star_catalog(draw):
    n = draw(st.integers(min_value=64, max_value=400))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    dim_rows = draw(st.integers(min_value=2, max_value=16))
    fact = Table.from_pydict("f", Schema.of(
        ("fk", int32()), ("v", int32()), ("p", float64()),
    ), {
        "fk": rng.integers(1, dim_rows + 1, n).tolist(),
        "v": rng.integers(-50, 50, n).tolist(),
        "p": np.round(rng.random(n) * 90, 2).tolist(),
    })
    dim = Table.from_pydict("d", Schema.of(
        ("dk", int32()), ("dn", varchar(4)),
    ), {
        "dk": list(range(1, dim_rows + 1)),
        "dn": [f"g{i % 5}" for i in range(dim_rows)],
    })
    catalog = Catalog()
    catalog.register(fact)
    catalog.register(dim)
    return catalog


STAR_SQL = st.sampled_from([
    "SELECT dn, SUM(v) AS sv, COUNT(*) AS c "
    "FROM f JOIN d ON fk = dk GROUP BY dn",
    "SELECT dn, SUM(p) AS sp, MIN(v) AS mn, MAX(v) AS mx "
    "FROM f JOIN d ON fk = dk GROUP BY dn",
    "SELECT dn, AVG(p) AS ap FROM f JOIN d ON fk = dk "
    "WHERE v > 0 GROUP BY dn",
])

knob_configs = st.builds(
    lambda fusion, depth, chunk, fault_site, seed: (
        fusion, depth, chunk,
        None if fault_site is None else FaultPlan(
            rules=(FaultRule(site=fault_site, probability=0.5),),
            seed=seed)),
    fusion=st.booleans(),
    depth=st.integers(min_value=1, max_value=5),
    chunk=st.sampled_from([4096, 1 << 16, 1 << 20]),
    fault_site=st.sampled_from([None, "launch", "reserve", "pinned",
                                "alloc", "transfer"]),
    seed=st.integers(0, 2**16),
)


class TestFusionBitIdentity:
    @given(catalog=star_catalog(), sql=STAR_SQL, knobs=knob_configs)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fusion_never_changes_answers(self, catalog, sql, knobs):
        """The headline contract: for any plan, fault plan, cache or
        pipeline knobs, fused and unfused runs return the CPU baseline's
        exact answers (thresholds lowered so tiny inputs still offload)."""
        fusion, depth, chunk, faults = knobs
        config = fused_config(fusion_enabled=fusion, faults=faults,
                              pipeline_depth=depth, chunk_bytes=chunk)
        thresholds = dataclasses.replace(config.thresholds, t1_min_rows=8,
                                         t2_min_groups=2)
        config = dataclasses.replace(config, thresholds=thresholds)
        gpu = GpuAcceleratedEngine(catalog, config=config)
        cpu = BluEngine(catalog)
        assert tables_equal(gpu.execute_sql(sql).table,
                            cpu.execute_sql(sql).table)
