"""Unit tests for stream-pipelined launches (section 2.1.2).

The planner/schedule pair is pure arithmetic, so most tests check exact
properties: chunk conservation, the double-buffer constraint, the
overhead trade-off, and the pool bound.  The ``streamed_launch`` tests
then drive a real device + pool and check buffer lifecycle (two in
flight, clean rollback on per-chunk faults).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GpuSpec
from repro.errors import KernelLaunchError, PinnedMemoryError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.gpu.device import GpuDevice
from repro.gpu.pinned import PinnedMemoryPool
from repro.gpu.streams import (
    DOUBLE_BUFFERS,
    PipelineSpec,
    StreamChunk,
    StreamPlan,
    plan_pipeline,
    streamed_launch,
)
from repro.gpu.transfer import transfer_seconds

SPEC = GpuSpec()
MB = 1 << 20


def make_plan(bytes_in=8 * MB, bytes_out=1 * MB, kernel_seconds=4e-3,
              depth=4, chunk_bytes=MB, pool_capacity=64 * MB, pinned=True):
    return plan_pipeline(
        bytes_in=bytes_in, bytes_out=bytes_out,
        kernel_seconds=kernel_seconds, spec=SPEC,
        pipeline=PipelineSpec(depth=depth, chunk_bytes=chunk_bytes),
        pool_capacity=pool_capacity, pinned=pinned,
    )


class TestPipelineSpec:
    def test_validate_accepts_defaults(self):
        assert PipelineSpec().validate().depth == 1

    @pytest.mark.parametrize("depth,chunk_bytes", [
        (0, MB), (-1, MB), (4, 0), (4, -1),
    ])
    def test_validate_rejects_bad_knobs(self, depth, chunk_bytes):
        with pytest.raises(ValueError):
            PipelineSpec(depth=depth, chunk_bytes=chunk_bytes).validate()


class TestPlanner:
    def test_depth_one_means_serial(self):
        assert make_plan(depth=1) is None

    def test_no_pipeline_means_serial(self):
        assert plan_pipeline(bytes_in=8 * MB, bytes_out=MB,
                             kernel_seconds=1e-3, spec=SPEC, pipeline=None,
                             pool_capacity=64 * MB) is None

    def test_nothing_to_transfer_means_serial(self):
        assert make_plan(bytes_in=0) is None

    def test_chunk_bytes_conserved(self):
        plan = make_plan()
        assert plan.bytes_in == 8 * MB
        assert plan.bytes_out == 1 * MB
        assert sum(c.bytes_in for c in plan.chunks) == 8 * MB
        assert sum(c.bytes_out for c in plan.chunks) == 1 * MB

    def test_kernel_slices_conserve_work(self):
        plan = make_plan(kernel_seconds=4e-3)
        sliced = sum(c.kernel_seconds for c in plan.chunks)
        overheads = len(plan.chunks) * SPEC.kernel_launch_overhead
        assert sliced == pytest.approx(4e-3 + overheads, rel=1e-12)

    def test_depth_sets_minimum_chunks(self):
        # 8 MB with 8 MB chunk_bytes would be one chunk; depth=4 forces 4.
        plan = make_plan(chunk_bytes=8 * MB, depth=4)
        assert len(plan.chunks) == 4

    def test_chunk_bytes_caps_chunk_size(self):
        plan = make_plan(bytes_in=8 * MB, chunk_bytes=MB, depth=2)
        assert len(plan.chunks) == 8
        assert plan.max_chunk_bytes <= MB

    def test_pool_bound_halves_the_chunk(self):
        # Two chunks are in flight at once, so a chunk can never exceed
        # half the pool even when chunk_bytes allows more.
        plan = make_plan(bytes_in=8 * MB, chunk_bytes=8 * MB,
                         pool_capacity=4 * MB, depth=2)
        assert plan.max_chunk_bytes <= 4 * MB // DOUBLE_BUFFERS

    def test_never_more_chunks_than_bytes(self):
        plan = make_plan(bytes_in=3, bytes_out=0, kernel_seconds=10.0,
                         depth=64)
        # 3 bytes can fill at most 3 non-empty H2D chunks — if the
        # overhead bill doesn't already push the planner back to serial.
        assert plan is None or len(plan.chunks) <= 3

    def test_overhead_makes_tiny_jobs_serial(self):
        # 4 KB split 8 ways pays 8 transfer setups + 8 launch overheads
        # to hide almost nothing: the planner must refuse.
        assert make_plan(bytes_in=4096, bytes_out=512,
                         kernel_seconds=1e-6, depth=8) is None

    def test_planned_means_strictly_faster(self):
        plan = make_plan()
        assert plan is not None
        assert plan.schedule().total_seconds < plan.serial_seconds

    def test_serial_reference_matches_transfer_model(self):
        plan = make_plan(bytes_in=8 * MB, bytes_out=MB, kernel_seconds=4e-3)
        assert plan.serial_in == transfer_seconds(8 * MB, SPEC, True)
        assert plan.serial_out == transfer_seconds(MB, SPEC, True)
        assert plan.serial_kernel == SPEC.kernel_launch_overhead + 4e-3


class TestSchedule:
    def test_makespan_decomposition_is_exact(self):
        plan = make_plan()
        s = plan.schedule()
        assert s.total_seconds == (s.exposed_in + s.kernel_seconds
                                   + s.exposed_out)
        assert s.exposed_in >= 0 and s.exposed_out >= 0

    def test_transfer_bound_job_collapses_to_copy_time(self):
        # With a negligible kernel the compute engine is never the
        # bottleneck: the makespan approaches the H2D copy time (the
        # copy engine is busy end to end) plus the kernel tail.  The
        # planner refuses such jobs (nothing to hide), so hand-build.
        chunks = tuple(
            StreamChunk(bytes_in=MB, bytes_out=0, kernel_seconds=1e-9,
                        h2d_seconds=1e-3, d2h_seconds=0.0)
            for _ in range(4)
        )
        plan = StreamPlan(chunks=chunks, pipeline=PipelineSpec(depth=4),
                          serial_in=4e-3, serial_kernel=4e-9,
                          serial_out=0.0)
        s = plan.schedule()
        h2d_total = sum(c.h2d_seconds for c in plan.chunks)
        assert s.total_seconds >= h2d_total
        assert s.total_seconds <= h2d_total + s.kernel_seconds + 1e-12

    def test_kernel_bound_job_hides_all_but_first_copy(self):
        # With a huge kernel every copy after the first hides under a
        # kernel slice: makespan = first chunk's H2D + kernel busy time.
        plan = make_plan(kernel_seconds=1.0, bytes_out=0)
        s = plan.schedule()
        assert s.exposed_in == pytest.approx(plan.chunks[0].h2d_seconds)

    def test_double_buffer_constraint_binds(self):
        # Hand-built: chunk 0 has a 1 s kernel slice, copies are 1 ms.
        # With only two buffers chunk 2's copy must wait for chunk 0's
        # kernel; with unlimited buffers it would start at 3 ms.
        chunks = tuple(
            StreamChunk(bytes_in=1, bytes_out=0,
                        kernel_seconds=1.0 if i == 0 else 1e-6,
                        h2d_seconds=1e-3, d2h_seconds=0.0)
            for i in range(4)
        )
        plan = StreamPlan(chunks=chunks, pipeline=PipelineSpec(depth=4),
                          serial_in=4e-3, serial_kernel=1.0, serial_out=0.0)
        s = plan.schedule()
        # Chunk 0 kernel ends at 1e-3 + 1.0; chunks 2 and 3's copies are
        # serialized after it, so the makespan shows those copies exposed.
        assert s.total_seconds >= 1e-3 + 1.0 + 2e-3

    def test_stalls_land_on_their_chunk(self):
        plan = make_plan()
        quiet = plan.schedule()
        stalled = plan.schedule([0.0, 5.0] + [0.0] * (len(plan.chunks) - 2))
        assert stalled.total_seconds > quiet.total_seconds
        # A stall far larger than the kernel cannot be hidden: it shows
        # up (mostly) as exposed inbound time.
        assert stalled.exposed_in > quiet.exposed_in

    def test_hidden_stall_is_free(self):
        # A tiny stall on a late chunk of a kernel-bound job hides under
        # the running kernel slices and costs nothing.
        plan = make_plan(kernel_seconds=1.0, bytes_out=0)
        quiet = plan.schedule()
        stalls = [0.0] * len(plan.chunks)
        stalls[-1] = 1e-6
        assert plan.schedule(stalls).total_seconds == pytest.approx(
            quiet.total_seconds)


class TestStreamedLaunch:
    @pytest.fixture()
    def device(self):
        return GpuDevice(0, SPEC)

    @pytest.fixture()
    def pool(self):
        return PinnedMemoryPool(64 * MB)

    def test_depth_one_matches_direct_serial_launch(self, device, pool):
        r = device.memory.reserve(8 * MB)
        via_stream = streamed_launch(
            device, pool, kernel="k", kernel_seconds=2e-3, reservation=r,
            rows=100, bytes_in=8 * MB, bytes_out=MB,
            pipeline=PipelineSpec(depth=1),
        )
        direct = device.launch("k", 2e-3, r, rows=100,
                               bytes_in=8 * MB, bytes_out=MB)
        device.memory.release(r)
        assert via_stream == direct
        assert via_stream.chunks == 1
        assert via_stream.overlap_saved_seconds == 0.0

    def test_pipelined_launch_beats_serial(self, device, pool):
        r = device.memory.reserve(8 * MB)
        result = streamed_launch(
            device, pool, kernel="k", kernel_seconds=4e-3, reservation=r,
            bytes_in=8 * MB, bytes_out=MB,
            pipeline=PipelineSpec(depth=4, chunk_bytes=MB),
        )
        serial = device.launch("k", 4e-3, r, bytes_in=8 * MB, bytes_out=MB)
        device.memory.release(r)
        assert result.chunks == 8
        assert result.total_seconds < serial.total_seconds
        assert result.serial_seconds == pytest.approx(serial.total_seconds)
        assert result.overlap_saved_seconds == pytest.approx(
            serial.total_seconds - result.total_seconds)

    def test_two_staging_buffers_in_flight(self, device, pool):
        r = device.memory.reserve(8 * MB)
        streamed_launch(
            device, pool, kernel="k", kernel_seconds=4e-3, reservation=r,
            bytes_in=8 * MB, bytes_out=MB,
            pipeline=PipelineSpec(depth=4, chunk_bytes=MB),
        )
        device.memory.release(r)
        assert pool.used == 0
        # Double buffering: never more than two chunk-size buffers live,
        # far below the serial path's full-size staging buffer.
        assert pool.peak_used <= DOUBLE_BUFFERS * MB
        assert pool.peak_used > MB

    def test_serial_path_stages_full_input(self, device, pool):
        r = device.memory.reserve(8 * MB)
        streamed_launch(device, pool, kernel="k", kernel_seconds=2e-3,
                        reservation=r, bytes_in=8 * MB, bytes_out=MB,
                        pipeline=None)
        device.memory.release(r)
        assert pool.used == 0
        assert pool.peak_used == 8 * MB

    def _arm(self, device, pool, rule):
        injector = FaultInjector(FaultPlan(rules=(rule,)))
        device.attach_injector(injector)
        pool.injector = injector

    def test_per_chunk_launch_fault_rolls_back_buffers(self, device, pool):
        # The third chunk's launch check fails; both live staging buffers
        # must be released and no profiler record emitted.
        self._arm(device, pool, FaultRule(site="launch", nth=(3,)))
        r = device.memory.reserve(8 * MB)
        with pytest.raises(KernelLaunchError):
            streamed_launch(
                device, pool, kernel="k", kernel_seconds=4e-3,
                reservation=r, bytes_in=8 * MB, bytes_out=MB,
                pipeline=PipelineSpec(depth=4, chunk_bytes=MB),
            )
        device.memory.release(r)
        assert pool.used == 0
        assert device.profiler.records == []

    def test_per_chunk_pinned_fault_rolls_back_buffers(self, device, pool):
        self._arm(device, pool, FaultRule(site="pinned", nth=(2,)))
        r = device.memory.reserve(8 * MB)
        with pytest.raises(PinnedMemoryError):
            streamed_launch(
                device, pool, kernel="k", kernel_seconds=4e-3,
                reservation=r, bytes_in=8 * MB, bytes_out=MB,
                pipeline=PipelineSpec(depth=4, chunk_bytes=MB),
            )
        device.memory.release(r)
        assert pool.used == 0

    def test_per_chunk_stall_slows_but_completes(self, device, pool):
        self._arm(device, pool,
                  FaultRule(site="transfer", nth=(2,), stall_seconds=0.5))
        r = device.memory.reserve(8 * MB)
        stalled = streamed_launch(
            device, pool, kernel="k", kernel_seconds=4e-3, reservation=r,
            bytes_in=8 * MB, bytes_out=MB,
            pipeline=PipelineSpec(depth=4, chunk_bytes=MB),
        )
        device.memory.release(r)
        assert pool.used == 0
        assert stalled.total_seconds > 0.5       # the stall is exposed
        # The serial reference pays the same stall, so savings survive.
        assert stalled.overlap_saved_seconds > 0.0

    def test_pipelined_launch_requires_pool(self, device, pool):
        from repro.errors import GpuError

        plan = make_plan()
        r = device.memory.reserve(8 * MB)
        with pytest.raises(GpuError):
            device.launch("k", 4e-3, r, bytes_in=8 * MB, plan=plan)
        device.memory.release(r)


# chunk_bytes is floored at 4 KB so a worst-case example plans a few
# thousand chunks, not millions — the properties are about schedule
# shape, not stress volume.
JOBS = st.fixed_dictionaries({
    "bytes_in": st.integers(min_value=0, max_value=8 * MB),
    "bytes_out": st.integers(min_value=0, max_value=2 * MB),
    "kernel_seconds": st.floats(min_value=0.0, max_value=0.1,
                                allow_nan=False),
    "pinned": st.booleans(),
})
KNOBS = st.fixed_dictionaries({
    "depth": st.integers(min_value=1, max_value=16),
    "chunk_bytes": st.integers(min_value=4096, max_value=8 * MB),
    "pool_capacity": st.integers(min_value=1, max_value=32 * MB),
})


def _serial_seconds(job):
    t_in = transfer_seconds(job["bytes_in"], SPEC, job["pinned"])
    t_out = transfer_seconds(job["bytes_out"], SPEC, job["pinned"])
    return (t_in + (SPEC.kernel_launch_overhead
                    + job["kernel_seconds"])) + t_out


class TestMakespanProperties:
    @given(job=JOBS, knobs=KNOBS)
    @settings(max_examples=150, deadline=None)
    def test_pipelined_never_slower_than_serial(self, job, knobs):
        """The universal perf property: for ANY job and ANY knob setting
        the planned launch time is <= the serial launch time (exactly, in
        float — the planner refuses plans that do not strictly win)."""
        plan = plan_pipeline(
            spec=SPEC, pool_capacity=knobs["pool_capacity"],
            pipeline=PipelineSpec(depth=knobs["depth"],
                                  chunk_bytes=knobs["chunk_bytes"]),
            **job,
        )
        serial = _serial_seconds(job)
        if plan is None:
            return
        assert plan.serial_seconds == serial
        assert plan.schedule().total_seconds < serial
        assert plan.bytes_in == job["bytes_in"]
        assert plan.bytes_out == job["bytes_out"]

    @given(job=JOBS, chunk_bytes=st.integers(min_value=1,
                                             max_value=8 * MB))
    @settings(max_examples=50, deadline=None)
    def test_depth_one_is_exactly_serial(self, job, chunk_bytes):
        plan = plan_pipeline(
            spec=SPEC, pool_capacity=64 * MB,
            pipeline=PipelineSpec(depth=1, chunk_bytes=chunk_bytes),
            **job,
        )
        assert plan is None      # depth 1 always takes the serial path

    @given(job=JOBS, knobs=KNOBS,
           stalls=st.lists(st.floats(min_value=0.0, max_value=1.0,
                                     allow_nan=False), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_decomposition_always_exact(self, job, knobs, stalls):
        plan = plan_pipeline(
            spec=SPEC, pool_capacity=knobs["pool_capacity"],
            pipeline=PipelineSpec(depth=knobs["depth"],
                                  chunk_bytes=knobs["chunk_bytes"]),
            **job,
        )
        if plan is None:
            return
        s = plan.schedule(stalls)
        assert s.exposed_in >= 0.0
        assert s.exposed_out >= 0.0
        assert s.total_seconds == (s.exposed_in + s.kernel_seconds
                                   + s.exposed_out)
        # Stalls can only push the makespan out, never pull it in.
        assert s.total_seconds >= plan.schedule().total_seconds
