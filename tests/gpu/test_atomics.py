"""Unit tests for the atomics/locks aggregation cost model (section 4.4)."""

import pytest

from repro.blu.datatypes import decimal, float64, int32, int64, varchar
from repro.blu.expressions import AggFunc
from repro.config import CostModel
from repro.gpu.kernels.atomics import AtomicsModel
from repro.gpu.kernels.request import PayloadSpec


@pytest.fixture()
def model():
    return AtomicsModel(CostModel())


def payloads(n, dtype=None):
    return [PayloadSpec(dtype or int64(), AggFunc.SUM)] * n


class TestContention:
    def test_floor_at_one(self, model):
        assert model.contention_factor(100, 100) == pytest.approx(1.0)
        assert model.contention_factor(0, 10) == pytest.approx(1.0)

    def test_grows_with_rows_per_group(self, model):
        low = model.contention_factor(1000, 1000)
        mid = model.contention_factor(100_000, 1000)
        high = model.contention_factor(10_000_000, 1000)
        assert low < mid < high


class TestUpdateRegimes:
    def test_native_cheapest(self, model):
        native = model.update_seconds(PayloadSpec(int64(), AggFunc.SUM), 1.0)
        cas = model.update_seconds(PayloadSpec(decimal(31, 2), AggFunc.SUM),
                                   1.0)
        lock = model.update_seconds(PayloadSpec(varchar(40), AggFunc.MAX),
                                    1.0)
        assert native < cas
        assert native < lock

    def test_cas_penalty_factor(self, model):
        native = model.update_seconds(PayloadSpec(float64(), AggFunc.MAX), 2.0)
        cas = model.update_seconds(PayloadSpec(decimal(31, 2), AggFunc.MAX),
                                   2.0)
        assert cas == pytest.approx(2.5 * native)

    def test_contention_scales_native(self, model):
        calm = model.update_seconds(PayloadSpec(int32(), AggFunc.SUM), 1.0)
        busy = model.update_seconds(PayloadSpec(int32(), AggFunc.SUM), 3.0)
        assert busy == pytest.approx(3 * calm)


class TestKernelStrategies:
    def test_row_lock_beats_atomics_for_many_aggs(self, model):
        """Section 4.3.3: kernel 3 wins past ~5 aggregation functions."""
        rows, groups = 100_000, 1000
        many = payloads(8)
        atomic = model.total_aggregation_seconds(many, rows, groups,
                                                 row_lock=False)
        locked = model.total_aggregation_seconds(many, rows, groups,
                                                 row_lock=True)
        assert locked < atomic

    def test_atomics_beat_row_lock_for_few_aggs(self, model):
        rows, groups = 100_000, 1000
        few = payloads(2)
        atomic = model.total_aggregation_seconds(few, rows, groups,
                                                 row_lock=False)
        locked = model.total_aggregation_seconds(few, rows, groups,
                                                 row_lock=True)
        assert atomic < locked

    def test_crossover_near_paper_threshold(self, model):
        """The break-even sits in the 4-7 agg range (paper: 'more than 5')."""
        rows, groups = 200_000, 2000
        crossover = None
        for n in range(1, 12):
            atomic = model.total_aggregation_seconds(payloads(n), rows,
                                                     groups, row_lock=False)
            locked = model.total_aggregation_seconds(payloads(n), rows,
                                                     groups, row_lock=True)
            if locked < atomic:
                crossover = n
                break
        assert crossover is not None
        assert 4 <= crossover <= 7

    def test_string_payloads_always_pay_locks(self, model):
        rows, groups = 10_000, 100
        strings = [PayloadSpec(varchar(20), AggFunc.MIN)]
        ints = [PayloadSpec(int64(), AggFunc.MIN)]
        assert model.total_aggregation_seconds(strings, rows, groups,
                                               row_lock=False) > \
            model.total_aggregation_seconds(ints, rows, groups,
                                            row_lock=False)

    def test_total_scales_with_rows(self, model):
        small = model.total_aggregation_seconds(payloads(3), 1000, 10,
                                                row_lock=False)
        large = model.total_aggregation_seconds(payloads(3), 100_000, 10,
                                                row_lock=False)
        assert large > 50 * small
