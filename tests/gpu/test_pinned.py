"""Unit tests for the pinned host-memory pool (section 2.1.2)."""

import pytest

from repro.errors import PinnedMemoryError
from repro.gpu.pinned import PinnedMemoryPool, REGISTRATION_RATE


class TestPool:
    def test_allocate_release(self):
        pool = PinnedMemoryPool(1000)
        buf = pool.allocate(300)
        assert pool.used == 300
        pool.release(buf)
        assert pool.used == 0

    def test_exhaustion(self):
        pool = PinnedMemoryPool(1000)
        pool.allocate(800)
        with pytest.raises(PinnedMemoryError):
            pool.allocate(300)

    def test_double_release(self):
        pool = PinnedMemoryPool(100)
        buf = pool.allocate(10)
        pool.release(buf)
        with pytest.raises(PinnedMemoryError):
            pool.release(buf)

    def test_peak_and_requests_tracked(self):
        pool = PinnedMemoryPool(1000)
        a = pool.allocate(400)
        b = pool.allocate(500)
        pool.release(a)
        pool.release(b)
        assert pool.peak_used == 900
        assert pool.total_requests == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PinnedMemoryPool(0)

    def test_negative_allocation(self):
        pool = PinnedMemoryPool(10)
        with pytest.raises(ValueError):
            pool.allocate(-5)


class TestRegistrationEconomics:
    def test_one_time_registration_cost_scales_with_capacity(self):
        small = PinnedMemoryPool(1_000_000)
        large = PinnedMemoryPool(100_000_000)
        assert large.registration_seconds > small.registration_seconds
        assert small.registration_seconds >= 1_000_000 / REGISTRATION_RATE

    def test_saved_registration_grows_with_use(self):
        pool = PinnedMemoryPool(10_000_000)
        before = pool.saved_registration_seconds()
        for _ in range(10):
            buf = pool.allocate(1_000_000)
            pool.release(buf)
        assert pool.saved_registration_seconds() > before
