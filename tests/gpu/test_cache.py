"""Unit tests for the device-resident column-segment cache."""

import numpy as np
import pytest

from repro.gpu.cache import DeviceColumnCache, SegmentKey, content_digest
from repro.gpu.memory import DeviceMemoryManager


def key(n: int, version: int = 0) -> SegmentKey:
    return SegmentKey(table="t", column=f"c{n}", segment=f"key:{n}",
                      catalog_version=version)


@pytest.fixture()
def mm():
    return DeviceMemoryManager(capacity_bytes=1000, device_id=0)


@pytest.fixture()
def cache(mm):
    return DeviceColumnCache(mm, budget_bytes=100, device_id=0)


class _FailSite:
    """Minimal injector double: one site always fails."""

    def __init__(self, site: str) -> None:
        self.site = site

    def decide(self, site: str, device_id: int = -1):
        return self.site if site == self.site else None


class TestContentDigest:
    def test_equal_bytes_equal_digest(self):
        a = np.arange(100, dtype=np.int32)
        assert content_digest(a) == content_digest(a.copy())

    def test_different_bytes_different_digest(self):
        a = np.arange(100, dtype=np.int32)
        b = a.copy()
        b[50] += 1
        assert content_digest(a) != content_digest(b)

    def test_dtype_matters(self):
        a = np.arange(100, dtype=np.int32)
        assert content_digest(a) != content_digest(a.astype(np.int64))

    def test_none_mask_marker(self):
        a = np.arange(10, dtype=np.int32)
        assert content_digest(a, None) != content_digest(a)

    def test_strided_view_equals_contiguous(self):
        a = np.arange(100, dtype=np.int64)
        assert content_digest(a[::2]) == content_digest(a[::2].copy())


class TestSegmentKey:
    def test_provenance_labels_excluded_from_identity(self):
        # A derived table stages byte-identical columns under another
        # name; content-addressed identity must still match.
        a = SegmentKey("base", "x", "key:abc", 0)
        b = SegmentKey("base_join_dim", "x_out", "key:abc", 0)
        assert a == b
        assert hash(a) == hash(b)

    def test_catalog_version_is_identity(self):
        assert SegmentKey("t", "x", "key:abc", 0) != \
            SegmentKey("t", "x", "key:abc", 1)

    def test_digest_is_identity(self):
        assert SegmentKey("t", "x", "key:abc", 0) != \
            SegmentKey("t", "x", "key:abd", 0)


class TestLookupInsert:
    def test_miss_then_hit(self, cache):
        assert not cache.lookup(key(1))
        assert cache.insert(key(1), 40)
        assert cache.lookup(key(1))
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hit_bytes"] == 40

    def test_insert_reserves_device_memory(self, cache, mm):
        cache.insert(key(1), 40)
        assert mm.reserved == 40
        assert cache.cached_bytes == 40
        assert all(r.tag == "cache" for r in mm.live_reservations)

    def test_insert_is_idempotent(self, cache, mm):
        assert cache.insert(key(1), 40)
        assert cache.insert(key(1), 40)
        assert len(cache) == 1
        assert mm.reserved == 40

    def test_oversized_segment_rejected(self, cache):
        assert not cache.insert(key(1), 101)
        assert len(cache) == 0

    def test_zero_budget_disables(self, mm):
        cache = DeviceColumnCache(mm, budget_bytes=0)
        assert not cache.enabled
        assert not cache.insert(key(1), 10)
        assert not cache.lookup(key(1))

    def test_nonpositive_bytes_rejected(self, cache):
        assert not cache.insert(key(1), 0)
        assert not cache.insert(key(2), -5)


class TestEviction:
    def test_lru_eviction_within_budget(self, cache):
        cache.insert(key(1), 60)
        cache.insert(key(2), 30)
        cache.insert(key(3), 50)          # evicts key(1), the LRU
        assert key(1) not in cache
        assert key(2) in cache and key(3) in cache
        assert cache.cached_bytes == 80
        assert cache.stats()["evictions"] == 1

    def test_lookup_refreshes_lru_order(self, cache):
        cache.insert(key(1), 60)
        cache.insert(key(2), 30)
        cache.lookup(key(1))              # key(2) is now the LRU
        cache.insert(key(3), 30)
        assert key(1) in cache
        assert key(2) not in cache

    def test_eviction_releases_device_memory(self, cache, mm):
        cache.insert(key(1), 60)
        cache.insert(key(2), 60)          # evicts key(1)
        assert mm.reserved == 60
        assert cache.cached_bytes == 60

    def test_shrink_frees_lru_first(self, cache):
        cache.insert(key(1), 40)
        cache.insert(key(2), 40)
        freed = cache.shrink(30)
        assert freed == 40
        assert key(1) not in cache and key(2) in cache

    def test_shrink_protects_affine_segments(self, cache):
        cache.insert(key(1), 40)
        cache.insert(key(2), 40)
        freed = cache.shrink(30, protect=[key(1)])
        assert freed == 40
        assert key(1) in cache and key(2) not in cache

    def test_shrink_sacrifices_protected_as_last_resort(self, cache):
        cache.insert(key(1), 40)
        freed = cache.shrink(40, protect=[key(1)])
        assert freed == 40
        assert len(cache) == 0

    def test_invalidate_all(self, cache, mm):
        cache.insert(key(1), 40)
        cache.insert(key(2), 40)
        assert cache.invalidate_all("device_lost") == 2
        assert len(cache) == 0
        assert mm.reserved == 0
        assert cache.stats()["invalidations"] == 1

    def test_invalidate_empty_is_noop(self, cache):
        assert cache.invalidate_all("device_lost") == 0
        assert cache.stats()["invalidations"] == 0


class TestFaultyInserts:
    def test_reserve_fault_skips_insert_cleanly(self, cache, mm):
        mm.injector = _FailSite("reserve")
        assert not cache.insert(key(1), 40)
        assert len(cache) == 0
        assert mm.reserved == 0
        assert cache.stats()["insert_failures"] == 1

    def test_alloc_fault_mid_insert_leaves_no_residue(self, cache, mm):
        # The reservation succeeds, the materialising allocation fails:
        # the half-built entry must be rolled back entirely.
        mm.injector = _FailSite("alloc")
        assert not cache.insert(key(1), 40)
        assert len(cache) == 0
        assert mm.reserved == 0
        assert mm.live_reservations == []
        assert cache.stats()["insert_failures"] == 1

    def test_recovers_after_fault_clears(self, cache, mm):
        mm.injector = _FailSite("alloc")
        cache.insert(key(1), 40)
        mm.injector = None
        assert cache.insert(key(1), 40)
        assert key(1) in cache


class TestStats:
    def test_hit_rate(self, cache):
        cache.insert(key(1), 10)
        cache.lookup(key(1))
        cache.lookup(key(2))
        stats = cache.stats()
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1
        assert stats["budget_bytes"] == 100

    def test_no_lookups_zero_rate(self, cache):
        assert cache.stats()["hit_rate"] == 0.0
