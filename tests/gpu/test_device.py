"""Unit tests for the simulated device, transfers and profiler."""

import pytest

from repro.config import GpuSpec
from repro.errors import GpuError
from repro.gpu.device import GpuDevice, SharedMemoryConfig, make_devices
from repro.gpu.transfer import transfer_seconds


@pytest.fixture()
def device():
    return GpuDevice(0, GpuSpec())


class TestTransferModel:
    def test_pinned_is_at_least_4x_faster(self):
        """Section 2.1.2: 'more than 4X faster'."""
        spec = GpuSpec()
        nbytes = 100 * 1024 * 1024
        pinned = transfer_seconds(nbytes, spec, pinned=True)
        unpinned = transfer_seconds(nbytes, spec, pinned=False)
        assert unpinned / pinned > 4.0

    def test_zero_bytes_is_free(self):
        assert transfer_seconds(0, GpuSpec()) == 0.0

    def test_setup_overhead_dominates_tiny_transfers(self):
        spec = GpuSpec()
        tiny = transfer_seconds(64, spec)
        assert tiny == pytest.approx(spec.transfer_setup_overhead, rel=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            transfer_seconds(-1, GpuSpec())


class TestSharedMemoryConfig:
    def test_prefer_shared_is_48_16(self, device):
        config = SharedMemoryConfig.prefer_shared()
        assert config.shared_bytes == 48 * 1024
        assert config.l1_bytes == 16 * 1024
        device.configure_shared_memory(config)
        assert device.shared_bytes_per_smx == 48 * 1024

    def test_invalid_split_rejected(self, device):
        with pytest.raises(GpuError):
            device.configure_shared_memory(
                SharedMemoryConfig(shared_bytes=50 * 1024, l1_bytes=16 * 1024))


class TestLaunch:
    def test_launch_requires_live_reservation(self, device):
        r = device.memory.reserve(1024)
        device.memory.release(r)
        with pytest.raises(GpuError):
            device.launch("k", 0.001, r)

    def test_launch_records_profile(self, device):
        r = device.memory.reserve(1 << 20)
        result = device.launch("groupby_regular", 0.002, r, rows=1000,
                               bytes_in=1 << 20, bytes_out=1 << 10)
        device.memory.release(r)
        assert result.total_seconds > 0.002
        assert len(device.profiler.records) == 1
        record = device.profiler.records[0]
        assert record.kernel == "groupby_regular"
        assert record.kernel_seconds > 0.002     # includes launch overhead
        assert record.transfer_seconds > 0

    def test_profiler_aggregates(self, device):
        r = device.memory.reserve(1 << 20)
        for _ in range(3):
            device.launch("k1", 0.001, r, rows=10, bytes_in=1024)
        device.launch("k2", 0.002, r, rows=20, bytes_in=1024)
        device.memory.release(r)
        agg = device.profiler.by_kernel()
        assert agg["k1"].invocations == 3
        assert agg["k1"].rows == 30
        assert agg["k2"].invocations == 1
        assert device.profiler.total_seconds > 0
        report = device.profiler.report()
        assert "k1" in report and "k2" in report

    def test_profiler_aggregates_bytes_moved(self, device):
        r = device.memory.reserve(1 << 20)
        device.launch("k", 0.001, r, rows=10, bytes_in=1024, bytes_out=256)
        device.launch("k", 0.001, r, rows=10, bytes_in=512)
        device.memory.release(r)
        agg = device.profiler.by_kernel()["k"]
        assert agg.bytes_moved == 1024 + 256 + 512
        record = device.profiler.records[0]
        assert (record.bytes_in, record.bytes_out) == (1024, 256)

    def test_make_devices(self):
        devices = make_devices((GpuSpec(), GpuSpec()))
        assert [d.device_id for d in devices] == [0, 1]


class TestLaunchMetrics:
    """Satellite of the profiler PR: the GpuProfiler's per-kernel
    aggregates must surface as first-class registry series."""

    def _launched_device(self):
        from repro.obs.metrics import MetricsRegistry

        device = GpuDevice(0, GpuSpec())
        device.metrics = MetricsRegistry()
        r = device.memory.reserve(1 << 20)
        device.launch("groupby_shared", 0.002, r, rows=100,
                      bytes_in=4096, bytes_out=512)
        device.launch("groupby_shared", 0.003, r, rows=100,
                      bytes_in=2048, bytes_out=256)
        device.memory.release(r)
        return device

    def test_kernel_seconds_total(self):
        device = self._launched_device()
        overhead = device.spec.kernel_launch_overhead
        counter = device.metrics.counter(
            "repro_kernel_seconds_total",
            labelnames=("kernel", "device"))
        value = counter.labels(kernel="groupby_shared", device="0").value
        assert value == pytest.approx(0.005 + 2 * overhead)
        invocations = device.metrics.counter(
            "repro_kernel_invocations_total",
            labelnames=("kernel", "device"))
        assert invocations.labels(kernel="groupby_shared",
                                  device="0").value == 2

    def test_transfer_bytes_total(self):
        device = self._launched_device()
        moved = device.metrics.counter("repro_transfer_bytes_total",
                                       labelnames=("direction",))
        assert moved.labels(direction="in").value == 4096 + 2048
        assert moved.labels(direction="out").value == 512 + 256

    def test_transfer_seconds_total_matches_profiler(self):
        device = self._launched_device()
        xfer = device.metrics.counter("repro_transfer_seconds_total",
                                      labelnames=("direction",))
        total = (xfer.labels(direction="in").value
                 + xfer.labels(direction="out").value)
        assert total == pytest.approx(device.profiler.total_transfer_seconds)
