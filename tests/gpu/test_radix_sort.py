"""Unit tests for the simulated Merrill radix sort kernel (section 3)."""

import numpy as np
import pytest

from repro.config import CostModel
from repro.gpu.kernels.radix_sort import RadixSortKernel, _find_duplicate_ranges


@pytest.fixture()
def kernel():
    return RadixSortKernel(CostModel())


class TestSorting:
    def test_sorts(self, kernel):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, 50_000, dtype=np.uint32)
        result = kernel.run(keys)
        assert np.array_equal(keys[result.order], np.sort(keys))

    def test_stable(self, kernel):
        keys = np.array([5, 1, 5, 1, 5], dtype=np.uint32)
        result = kernel.run(keys)
        # Equal keys keep their original relative order.
        assert list(result.order) == [1, 3, 0, 2, 4]

    def test_empty(self, kernel):
        result = kernel.run(np.array([], dtype=np.uint32))
        assert len(result.order) == 0
        assert result.duplicate_ranges == []
        assert result.kernel_seconds == 0.0

    def test_cost_scales_linearly(self, kernel):
        small = kernel.run(np.arange(10_000, dtype=np.uint32))
        large = kernel.run(np.arange(100_000, dtype=np.uint32))
        assert large.kernel_seconds == pytest.approx(
            10 * small.kernel_seconds, rel=0.05)

    def test_device_bytes_double_buffer(self, kernel):
        assert kernel.device_bytes(1000) == 16_000


class TestDuplicateRanges:
    def test_found_in_sorted_keys(self, kernel):
        keys = np.array([3, 1, 3, 2, 3, 2], dtype=np.uint32)
        result = kernel.run(keys)
        ranges = {(d.start, d.length) for d in result.duplicate_ranges}
        # sorted: 1 2 2 3 3 3 -> (1,2) and (3,3)
        assert ranges == {(1, 2), (3, 3)}

    def test_no_duplicates(self, kernel):
        result = kernel.run(np.arange(100, dtype=np.uint32)[::-1].copy())
        assert result.duplicate_ranges == []

    def test_all_equal_is_one_range(self, kernel):
        result = kernel.run(np.full(50, 7, dtype=np.uint32))
        assert len(result.duplicate_ranges) == 1
        assert result.duplicate_ranges[0].length == 50

    def test_helper_on_presorted(self):
        ranges = _find_duplicate_ranges(np.array([1, 1, 2, 3, 3, 3],
                                                 dtype=np.uint32))
        assert [(r.start, r.length) for r in ranges] == [(0, 2), (3, 3)]
