"""Unit tests for the modelled PCIe/NVLink interconnect."""

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.gpu.interconnect import (
    Interconnect,
    WaveLeg,
    contended_bandwidth,
)
from repro.obs.metrics import MetricsRegistry


def make_interconnect(**overrides) -> Interconnect:
    kwargs = dict(
        link_bandwidth=12.0e9,
        switch_bandwidth=48.0e9,
        setup_overhead=0.0,
    )
    kwargs.update(overrides)
    return Interconnect(**kwargs)


class TestContendedBandwidth:
    def test_link_bound_when_switch_has_headroom(self):
        # 48 GB/s switch / 2 streams = 24 GB/s > 12 GB/s link
        assert contended_bandwidth(12e9, 48e9, 2) == 12e9

    def test_switch_bound_when_oversubscribed(self):
        # 48 GB/s / 8 streams = 6 GB/s < 12 GB/s link
        assert contended_bandwidth(12e9, 48e9, 8) == pytest.approx(6e9)

    def test_zero_concurrency_clamped(self):
        assert contended_bandwidth(12e9, 48e9, 0) == 12e9


class TestWaveLegs:
    def test_uncontended_wave_has_no_stall(self):
        ic = make_interconnect()
        legs = ic.wave_legs([(0, 12_000_000_000), (1, 12_000_000_000)])
        # Two streams share a 48 GB/s switch: each still gets its full
        # 12 GB/s link, so the legs take 1 s with zero stall.
        assert [leg.seconds for leg in legs] == pytest.approx([1.0, 1.0])
        assert all(leg.stall_seconds == 0.0 for leg in legs)

    def test_oversubscribed_wave_accounts_stall(self):
        ic = make_interconnect()
        sizes = [(d, 6_000_000_000) for d in range(8)]
        legs = ic.wave_legs(sizes)
        # 48 GB/s / 8 = 6 GB/s effective: 1 s contended vs 0.5 s alone.
        for leg in legs:
            assert leg.seconds == pytest.approx(1.0)
            assert leg.stall_seconds == pytest.approx(0.5)
        assert ic.wave_seconds(sizes) == pytest.approx(1.0)

    def test_empty_legs_do_not_count_toward_contention(self):
        ic = make_interconnect()
        legs = ic.wave_legs([(0, 12_000_000_000), (1, 0)])
        # Only one active stream: full link bandwidth, placeholder leg.
        assert legs[0].seconds == pytest.approx(1.0)
        assert legs[1] == WaveLeg(1, 0, 0.0, 0.0)

    def test_setup_overhead_charged_per_leg(self):
        ic = make_interconnect(setup_overhead=15e-6)
        (leg,) = ic.wave_legs([(0, 12_000_000)])
        assert leg.seconds == pytest.approx(15e-6 + 1e-3)
        assert leg.stall_seconds == 0.0


class TestExchange:
    def test_nvlink_exchange_is_one_hop(self):
        ic = make_interconnect(nvlink_enabled=True, nvlink_bandwidth=40.0e9)
        # 4 shards: 3/4 of the bytes cross, spread over 4 devices.
        nbytes = 160_000_000_000
        per_device = nbytes * (3 / 4) / 4
        assert ic.exchange_seconds(nbytes, 4) == pytest.approx(
            per_device / 40.0e9)

    def test_host_bounce_pays_both_directions(self):
        ic = make_interconnect(nvlink_enabled=False)
        nbytes = 16_000_000_000
        per_device = nbytes * (3 / 4) / 4
        eff = contended_bandwidth(12e9, 48e9, 4)
        assert ic.exchange_seconds(nbytes, 4) == pytest.approx(
            2 * per_device / eff)

    def test_nvlink_beats_host_bounce(self):
        bounced = make_interconnect().exchange_seconds(1 << 30, 4)
        meshed = make_interconnect(
            nvlink_enabled=True).exchange_seconds(1 << 30, 4)
        assert meshed < bounced

    def test_degenerate_exchanges_are_free(self):
        ic = make_interconnect()
        assert ic.exchange_seconds(0, 4) == 0.0
        assert ic.exchange_seconds(1 << 20, 1) == 0.0
        assert ic.cross_shard_bytes(0, 4) == 0
        assert ic.cross_shard_bytes(1000, 4) == 750


class TestAccounting:
    def test_record_transfer_accumulates_per_link(self):
        ic = make_interconnect()
        ic.record_transfer(0, 100, 0.5, stall_seconds=0.1)
        ic.record_transfer(0, 50, 0.25)
        ic.record_transfer(1, 10, 0.01)
        snap = ic.snapshot()
        assert snap["pcie0"]["bytes_total"] == 150
        assert snap["pcie0"]["busy_seconds"] == pytest.approx(0.75)
        assert snap["pcie0"]["stall_seconds"] == pytest.approx(0.1)
        assert snap["pcie1"]["bytes_total"] == 10

    def test_record_exchange_labels_by_transport(self):
        pcie = make_interconnect()
        pcie.record_exchange(100, 0.5)
        assert "pcie-host" in pcie.snapshot()
        nvl = make_interconnect(nvlink_enabled=True)
        nvl.record_exchange(100, 0.5)
        assert "nvlink" in nvl.snapshot()

    def test_record_wave_skips_empty_legs(self):
        ic = make_interconnect()
        ic.record_wave(ic.wave_legs([(0, 1 << 20), (1, 0)]))
        assert sorted(ic.snapshot()) == ["pcie0"]

    def test_metrics_export(self):
        metrics = MetricsRegistry()
        ic = make_interconnect(metrics=metrics)
        ic.record_transfer(0, 1 << 20, 0.5, stall_seconds=0.125)

        def sample(name):
            return metrics.get(name).labels(link="pcie0").value

        assert sample("repro_link_bytes_total") == float(1 << 20)
        assert sample("repro_link_busy_seconds_total") == pytest.approx(0.5)
        assert sample("repro_link_stall_seconds_total") == pytest.approx(
            0.125)


class TestFromConfig:
    def test_inherits_spec_and_topology_knobs(self):
        config = dataclasses.replace(
            SystemConfig(),
            switch_bandwidth=96.0e9,
            nvlink_enabled=True,
            nvlink_bandwidth=50.0e9,
        )
        ic = Interconnect.from_config(config)
        spec = config.gpus[0]
        assert ic.link_bandwidth == spec.pcie_pinned_bw
        assert ic.setup_overhead == spec.transfer_setup_overhead
        assert ic.switch_bandwidth == 96.0e9
        assert ic.nvlink_enabled and ic.nvlink_bandwidth == 50.0e9
