"""Shared fixtures: deterministic tables, catalogs and engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blu import BluEngine, Catalog, Schema, Table
from repro.blu.datatypes import float64, int32, int64, varchar
from repro.config import paper_testbed
from repro.core import GpuAcceleratedEngine


SALES_ROWS = 50_000


@pytest.fixture(scope="session")
def sales_table() -> Table:
    """A deterministic mini fact table used across unit tests."""
    rng = np.random.default_rng(42)
    n = SALES_ROWS
    schema = Schema.of(
        ("s_item", int32()),
        ("s_store", int32()),
        ("s_qty", int32()),
        ("s_paid", float64()),
        ("s_ticket", int64()),
        ("s_channel", varchar(8)),
    )
    data = {
        "s_item": rng.integers(1, 2000, n).tolist(),
        "s_store": rng.integers(1, 13, n).tolist(),
        "s_qty": rng.integers(1, 100, n).tolist(),
        "s_paid": np.round(rng.random(n) * 500, 2).tolist(),
        "s_ticket": np.arange(1, n + 1).tolist(),
        "s_channel": rng.choice(
            np.array(["web", "store", "catalog", "phone"], dtype=object), n
        ).tolist(),
    }
    return Table.from_pydict("sales", schema, data)


@pytest.fixture(scope="session")
def stores_table() -> Table:
    schema = Schema.of(
        ("st_id", int32()),
        ("st_state", varchar(2)),
        ("st_size", int32()),
    )
    states = ["CA", "NY", "TX", "WA", "IL", "FL"]
    data = {
        "st_id": list(range(1, 13)),
        "st_state": [states[i % len(states)] for i in range(12)],
        "st_size": [100 * (i + 1) for i in range(12)],
    }
    return Table.from_pydict("stores", schema, data)


@pytest.fixture(scope="session")
def small_catalog(sales_table, stores_table) -> Catalog:
    catalog = Catalog()
    catalog.register(sales_table)
    catalog.register(stores_table)
    return catalog


@pytest.fixture()
def cpu_engine(small_catalog) -> BluEngine:
    return BluEngine(small_catalog)


@pytest.fixture()
def gpu_engine(small_catalog) -> GpuAcceleratedEngine:
    import dataclasses

    config = paper_testbed()
    # Unit-test scale: make offload reachable for the 50k-row fixture.
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     sort_min_rows=5_000)
    config = dataclasses.replace(config, thresholds=thresholds)
    return GpuAcceleratedEngine(small_catalog, config=config)


@pytest.fixture(scope="session")
def bd_catalog():
    """A small BD Insights database for workload/integration tests."""
    from repro.workloads.datagen import generate_database

    return generate_database(scale=0.02, seed=11)


@pytest.fixture(scope="session")
def bd_config(bd_catalog):
    from repro.workloads.datagen import scaled_config

    return scaled_config(bd_catalog)


def tables_equal(a: Table, b: Table, float_tol: float = 1e-9) -> bool:
    """Structural + value equality of two result tables."""
    if a.schema.names() != b.schema.names() or a.num_rows != b.num_rows:
        return False
    da, db = a.to_pydict(), b.to_pydict()
    for name in a.schema.names():
        for x, y in zip(da[name], db[name]):
            if isinstance(x, float) or isinstance(y, float):
                if not np.isclose(x, y, rtol=float_tol, atol=1e-6,
                                  equal_nan=True):
                    return False
            elif x != y:
                return False
    return True
