"""The benchmark harness: deterministic baselines, byte-stable files,
and a compare gate that trips on regressions and nothing else."""

import json

import pytest

from repro.obs import bench
from repro.workloads.driver import WorkloadDriver


@pytest.fixture(scope="module")
def driver(bd_catalog, bd_config):
    return WorkloadDriver(bd_catalog, bd_config)


@pytest.fixture(scope="module")
def result(driver):
    """One complex-class run (5 queries) at the test fixture's scale."""
    return bench.run_workload(driver, "bd_insights", scale=0.02, seed=11,
                              classes=["complex"])


class TestPercentile:
    def test_bucketed_nearest_rank(self):
        """Routed through the streaming histogram: the estimate sits
        within one bucket (1% relative) above the exact nearest-rank
        sample, and quantiles hitting the max are exact."""
        from repro.obs.hist import DEFAULT_RESOLUTION

        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        p50 = bench.percentile(values, 0.50)
        assert 3.0 <= p50 <= 3.0 * (1.0 + DEFAULT_RESOLUTION)
        # Rank 5 of 5 is the observed maximum — clamped, hence exact.
        assert bench.percentile(values, 0.95) == 5.0
        assert bench.percentile(values, 1.00) == 5.0

    def test_order_independent(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert bench.percentile(values, 0.5) \
            == bench.percentile(sorted(values), 0.5)

    def test_empty_and_single(self):
        assert bench.percentile([], 0.5) == 0.0
        assert bench.percentile([7.0], 0.95) == 7.0


class TestRun:
    def test_class_stats_shape(self, result):
        assert set(result.classes) == {"complex"}
        stat = result.classes["complex"]
        assert stat.queries == 5
        assert len(result.queries) == 5
        assert 0.0 < stat.p50_ms <= stat.p95_ms <= stat.total_ms
        assert stat.bytes_moved > 0          # complex queries offload
        assert stat.gpu_offload_ratio == 1.0

    def test_query_stats_consistent_with_class(self, result):
        stat = result.classes["complex"]
        elapsed = [q.elapsed_ms for q in result.queries.values()]
        assert sum(elapsed) == pytest.approx(stat.total_ms)
        assert stat.bytes_moved == sum(q.bytes_moved
                                       for q in result.queries.values())

    def test_run_is_deterministic(self, bd_catalog, bd_config, result):
        fresh = bench.run_workload(
            WorkloadDriver(bd_catalog, bd_config), "bd_insights",
            scale=0.02, seed=11, classes=["complex"])
        assert fresh.to_json() == result.to_json()

    def test_unknown_workload_and_class(self, driver):
        with pytest.raises(bench.BenchError):
            bench.workload_classes("tpch", driver)
        with pytest.raises(bench.BenchError):
            bench.run_workload(driver, "bd_insights", scale=0.02, seed=11,
                               classes=["nope"])


class TestBaselineIO:
    def test_round_trip(self, result, tmp_path):
        path = result.write(str(tmp_path / "BENCH_bd_insights.json"))
        loaded = bench.load_baseline(path)
        assert loaded == result.to_dict()
        assert loaded["format"] == bench.BASELINE_FORMAT

    def test_json_is_byte_stable(self, result):
        assert result.to_json() == result.to_json()
        assert result.to_json().endswith("\n")
        # sorted keys at every level
        doc = json.loads(result.to_json())
        assert list(doc["queries"]) == sorted(doc["queries"])

    def test_missing_and_malformed_baseline(self, tmp_path):
        with pytest.raises(bench.BenchError, match="no baseline"):
            bench.load_baseline(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(bench.BenchError, match="not valid JSON"):
            bench.load_baseline(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"format": 99}')
        with pytest.raises(bench.BenchError, match="format"):
            bench.load_baseline(str(wrong))

    def test_default_path(self):
        assert bench.baseline_path("bd_insights") == \
            "benchmarks/baselines/BENCH_bd_insights.json"


class TestCompare:
    def test_clean_rerun_passes(self, result):
        comparison = bench.compare(result, result.to_dict())
        assert comparison.ok
        assert comparison.failures == []
        assert "OK" in comparison.to_text()

    def test_injected_slowdown_fails(self, driver, result):
        slowed = bench.run_workload(driver, "bd_insights", scale=0.02,
                                    seed=11, classes=["complex"],
                                    slowdown=1.5)
        comparison = bench.compare(slowed, result.to_dict(), tolerance=0.10)
        assert not comparison.ok
        assert any("p50_ms regressed" in f for f in comparison.failures)

    def test_slowdown_within_tolerance_passes(self, driver, result):
        slowed = bench.run_workload(driver, "bd_insights", scale=0.02,
                                    seed=11, classes=["complex"],
                                    slowdown=1.05)
        assert bench.compare(slowed, result.to_dict(), tolerance=0.10).ok

    def test_improvement_beyond_tolerance_fails(self, driver, result):
        # A stale baseline hides future regressions, so a large
        # improvement is a failure too — with a hint to refresh.
        faster = bench.run_workload(driver, "bd_insights", scale=0.02,
                                    seed=11, classes=["complex"],
                                    slowdown=0.5)
        comparison = bench.compare(faster, result.to_dict())
        assert not comparison.ok
        assert any("improved" in f and "--update" in f
                   for f in comparison.failures)

    def test_improvement_within_tolerance_passes(self, driver, result):
        faster = bench.run_workload(driver, "bd_insights", scale=0.02,
                                    seed=11, classes=["complex"],
                                    slowdown=0.95)
        assert bench.compare(faster, result.to_dict(),
                             tolerance=0.10).ok

    def test_cache_fraction_mismatch_fails_outright(self, result):
        baseline = result.to_dict()
        baseline["cache_fraction"] = 0.0
        comparison = bench.compare(result, baseline)
        assert not comparison.ok
        assert any("config mismatch" in f and "cache_fraction" in f
                   for f in comparison.failures)

    def test_pre_cache_baseline_still_comparable(self, result):
        # Baselines written before the cache existed carry no
        # cache_fraction key; compare() must not invent a mismatch.
        baseline = result.to_dict()
        del baseline["cache_fraction"]
        assert bench.compare(result, baseline).ok

    def test_pipeline_knob_mismatch_fails_outright(self, result):
        for knob, other in (("pipeline_depth", 1), ("chunk_bytes", 4096)):
            baseline = result.to_dict()
            baseline[knob] = other
            comparison = bench.compare(result, baseline)
            assert not comparison.ok
            assert any("config mismatch" in f and knob in f
                       for f in comparison.failures), knob

    def test_pre_pipeline_baseline_still_comparable(self, result):
        # Baselines written before the stream pipeline existed carry no
        # pipeline keys; compare() must not invent a mismatch.
        baseline = result.to_dict()
        del baseline["pipeline_depth"]
        del baseline["chunk_bytes"]
        assert bench.compare(result, baseline).ok

    def test_result_checksum_recorded_per_query(self, result):
        for stat in result.queries.values():
            assert stat.checksum      # every query carries a digest

    def test_checksum_mismatch_fails_outright(self, result):
        baseline = result.to_dict()
        baseline["queries"]["C1"]["checksum"] = "deadbeefdeadbeef"
        comparison = bench.compare(result, baseline)
        assert not comparison.ok
        assert any("checksum changed" in f for f in comparison.failures)

    def test_pre_checksum_baseline_still_comparable(self, result):
        baseline = result.to_dict()
        for q in baseline["queries"].values():
            del q["checksum"]
        assert bench.compare(result, baseline).ok

    def test_config_mismatch_fails_outright(self, result):
        baseline = result.to_dict()
        baseline["scale"] = 0.05
        comparison = bench.compare(result, baseline)
        assert not comparison.ok
        assert any("config mismatch" in f for f in comparison.failures)

    def test_new_query_in_set_fails(self, result, driver):
        baseline = result.to_dict()
        del baseline["queries"]["C1"]
        comparison = bench.compare(result, baseline)
        assert any("query set changed" in f for f in comparison.failures)


class TestScaleOut:
    @pytest.fixture(scope="class")
    def scale_out(self):
        """A tiny 1-vs-2-device scale-out run (fresh DB per count)."""
        return bench.run_scale_out(scale=0.02, seed=11, degree=48,
                                   device_counts=(1, 2))

    def test_one_class_per_device_count(self, scale_out):
        assert sorted(scale_out.classes) == ["devices_1", "devices_2"]
        assert scale_out.device_counts == [1, 2]
        assert scale_out.shard_enabled and scale_out.nvlink_enabled
        # Same queries at both counts, keyed by device prefix.
        d1 = [q for q in scale_out.queries if q.startswith("d1:")]
        d2 = [q for q in scale_out.queries if q.startswith("d2:")]
        assert len(d1) == len(d2) > 0

    def test_speedups_normalised_to_one_device(self, scale_out):
        speedups = bench.scale_out_speedups(scale_out)
        assert speedups[1] == 1.0
        assert speedups[2] > 1.0    # sharding must actually pay

    def test_checksums_identical_across_device_counts(self, scale_out):
        """run_scale_out itself raises on CPU divergence; this pins the
        secondary invariant that the digest is device-count-invariant."""
        by_query: dict[str, set] = {}
        for key, stat in scale_out.queries.items():
            by_query.setdefault(key.split(":", 1)[1], set()).add(
                stat.checksum)
        for query_id, checksums in by_query.items():
            assert len(checksums) == 1, query_id

    def test_self_compare_passes(self, scale_out):
        assert bench.compare(scale_out, scale_out.to_dict()).ok

    def test_topology_knob_mismatches_name_the_flag(self, scale_out):
        path = "benchmarks/baselines/BENCH_scale_out.json"
        for knob, other, flag in (
                ("device_counts", [1, 2, 4], "--devices 1,2,4"),
                ("shard_enabled", False, "--shard off"),
                ("nvlink_enabled", False, "--nvlink off"),
                ("switch_bandwidth", 96.0e9, "--switch-bandwidth 9.6e+10"),
        ):
            baseline = scale_out.to_dict()
            baseline[knob] = other
            comparison = bench.compare(scale_out, baseline,
                                       baseline_path=path)
            assert not comparison.ok
            assert any("config mismatch" in f and knob in f
                       for f in comparison.failures), knob
            hint = [f for f in comparison.failures
                    if "not comparable" in f][0]
            assert flag in hint and path in hint, knob

    def test_regular_results_omit_scale_out_keys(self, result):
        """Old BENCH_* baselines must stay byte-identical: the topology
        keys only serialise for scale-out runs."""
        d = result.to_dict()
        for key in ("device_counts", "shard_enabled", "nvlink_enabled",
                    "switch_bandwidth"):
            assert key not in d

    def test_run_workload_refuses_scale_out(self, driver):
        with pytest.raises(bench.BenchError, match="run_scale_out"):
            bench.run_workload(driver, "scale_out", scale=0.02, seed=11)

    def test_speedups_require_a_single_device_class(self, result):
        with pytest.raises(bench.BenchError, match="1-device"):
            bench.scale_out_speedups(result)
