"""Postmortem correlation: a flight-record snapshot from a chaos run
must reduce to the causal incident chain — fault -> CPU fallback ->
quarantine -> queue pressure -> SLO burn — and noise must stay out."""

import dataclasses

import pytest

from repro.obs.postmortem import build_postmortem
from repro.obs.recorder import FlightEvent, FlightSnapshot


def _snap(events, trigger="manual"):
    return FlightSnapshot(trigger=trigger, time=1.0, dropped=0,
                          capacity=64, events=tuple(events))


def _event(seq, name, time=0.0, kind="instant", **attrs):
    return FlightEvent(time=time, seq=seq, kind=kind, name=name,
                       attributes=attrs)


class TestCorrelation:
    def test_full_chain_in_causal_order(self):
        report = build_postmortem(_snap([
            _event(0, "fault.injected", 0.001, site="device_loss",
                   device_id=0),
            _event(1, "breaker.transition", 0.001, kind="breaker",
                   device_id=0, **{"from": "closed", "to": "open"}),
            _event(2, "fault.fallback", 0.002, operator="groupby",
                   error="DeviceLostError"),
            _event(3, "cache.invalidate", 0.002, device_id=0, entries=2,
                   bytes=1024, reason="device_lost"),
            _event(4, "scheduler.dispatch", 0.003, kind="dispatch",
                   granted=False, device_id=None, memory_bytes=4096),
            _event(5, "slo.alert", 0.004, kind="record", slo="latency",
                   rule="page", long_burn=14.4, short_burn=15.0),
        ]))
        assert report.chain == ["fault", "fallback", "quarantine",
                                "cache_invalidation", "queue_pressure",
                                "slo_alert"]
        stages = [entry.stage for entry in report.timeline]
        assert stages == sorted(
            stages, key=["fault", "quarantine", "fallback",
                         "cache_invalidation", "queue_pressure",
                         "slo_alert"].index) or len(stages) == 6

    def test_noise_is_excluded(self):
        report = build_postmortem(_snap([
            _event(0, "query", 0.001, kind="span", query_id="Q1"),
            _event(1, "gpu.kernel", 0.002, kind="span"),
            _event(2, "scheduler.dispatch", 0.003, kind="dispatch",
                   granted=True, device_id=1, memory_bytes=4096),
            _event(3, "breaker.transition", 0.004, kind="breaker",
                   device_id=0, **{"from": "open", "to": "half-open"}),
            _event(4, "repro_gpu_offloads_total", 0.005, kind="metric",
                   amount=1),
        ]))
        assert report.timeline == []
        assert report.chain == []
        assert "no incident markers" in report.to_text()

    def test_events_ordered_by_time_then_seq(self):
        report = build_postmortem(_snap([
            _event(9, "fault.injected", 0.005, site="launch"),
            _event(2, "fault.injected", 0.001, site="launch"),
            _event(3, "fault.injected", 0.001, site="reserve"),
        ]))
        keys = [(e.event.time, e.event.seq) for e in report.timeline]
        assert keys == sorted(keys)

    def test_text_and_html_renderings(self):
        report = build_postmortem(_snap([
            _event(0, "fault.injected", 0.001, site="device_loss",
                   device_id=1),
            _event(1, "slo.alert", 0.002, kind="record", slo="latency",
                   rule="page", long_burn=2.5, short_burn=3.0),
        ], trigger="slo.alert"))
        text = report.to_text()
        assert "causal chain: fault -> slo_alert" in text
        assert "device=1" in text
        page = report.to_html()
        assert page.startswith("<!DOCTYPE html>")
        assert "slo_alert" in page
        data = report.to_dict()
        assert data["chain"] == ["fault", "slo_alert"]
        assert len(data["timeline"]) == 2

    def test_write_html(self, tmp_path):
        report = build_postmortem(_snap([
            _event(0, "fault.injected", 0.0, site="launch")]))
        path = str(tmp_path / "pm.html")
        assert report.write_html(path) == path
        assert "<html" in open(path).read()


@pytest.mark.chaos
class TestChaosFlightRecord:
    def test_total_device_loss_dumps_snapshot_with_causal_chain(
            self, bd_catalog, bd_config, tmp_path):
        """The acceptance criterion: a chaos run that loses every GPU
        under concurrent serving auto-dumps a flight-record snapshot
        whose postmortem timeline holds the fault -> fallback ->
        SLO-alert chain."""
        from repro.faults import FaultPlan
        from repro.obs.slo import SLObjective
        from repro.workloads.bdinsights import queries_by_category
        from repro.workloads.driver import ConcurrentDriver, WorkloadDriver
        from repro.workloads.query import QueryCategory

        queries = queries_by_category(QueryCategory.COMPLEX)
        healthy = WorkloadDriver(bd_catalog, bd_config)
        broken = WorkloadDriver(
            bd_catalog, dataclasses.replace(
                bd_config, faults=FaultPlan.total_device_loss()))
        broken.gpu_engine.recorder.dump_dir = str(tmp_path)

        # Pin the latency SLO between the two tails, exactly like the
        # chaos serving test: healthy clears it, degraded cannot.
        probe_ok = ConcurrentDriver(healthy, queries).run(sessions=8)
        probe_bad = ConcurrentDriver(broken, queries).run(sessions=8)
        threshold = (probe_ok.hist.p999 + probe_bad.hist.p50) / 2.0
        slos = [SLObjective("latency", objective=0.99,
                            latency_threshold=threshold)]
        bad = ConcurrentDriver(broken, queries, slos=slos).run(sessions=8)
        assert bad.slo.alerts, "device loss must trip the SLO alert"

        # The recorder auto-dumped at least one snapshot file...
        snapshots = sorted(tmp_path.glob("flight_*.jsonl"))
        assert snapshots, "no flight-record snapshot was auto-dumped"
        assert sorted(tmp_path.glob("flight_*.html"))

        # ...and the one triggered by the SLO alert correlates into the
        # full causal story.
        alert_snaps = [p for p in snapshots if "slo_alert" in p.name]
        assert alert_snaps, "no snapshot was triggered by the SLO alert"
        report = build_postmortem(FlightSnapshot.load(str(alert_snaps[-1])))
        assert "fault" in report.chain
        assert "fallback" in report.chain
        assert "slo_alert" in report.chain
        assert report.chain.index("fault") \
            < report.chain.index("fallback") \
            < report.chain.index("slo_alert")
        # The timeline itself is causally ordered: the first fault
        # precedes the first alert in simulated time.
        first = {entry.stage: entry.event.time
                 for entry in reversed(report.timeline)}
        assert first["fault"] <= first["slo_alert"]
