"""SLO burn-rate semantics: windowed counts, multi-window rules, and
edge-triggered alerting over simulated time."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_RULES,
    BurnRateRule,
    SLObjective,
    SloError,
    SloTracker,
)
from repro.obs.tracing import Tracer


def latency_slo(threshold: float = 0.1,
                objective: float = 0.99) -> SLObjective:
    return SLObjective("latency", objective=objective,
                       latency_threshold=threshold)


class TestObjective:
    def test_validation(self):
        with pytest.raises(SloError):
            SLObjective("bad", objective=1.0)
        with pytest.raises(SloError):
            SLObjective("bad", objective=0.0)
        with pytest.raises(SloError):
            SLObjective("bad", latency_threshold=-1.0)

    def test_latency_verdict(self):
        slo = latency_slo(threshold=0.1)
        assert slo.is_good(0.05, ok=True)
        assert slo.is_good(0.1, ok=True)          # inclusive threshold
        assert not slo.is_good(0.11, ok=True)
        assert not slo.is_good(0.05, ok=False)    # failure is always bad

    def test_availability_verdict_ignores_latency(self):
        slo = SLObjective("avail", objective=0.999)
        assert slo.is_good(999.0, ok=True)
        assert not slo.is_good(0.001, ok=False)

    def test_class_scoping(self):
        slo = SLObjective("complex-only", query_class="complex")
        assert slo.matches("complex")
        assert not slo.matches("simple")
        assert SLObjective("all").matches("anything")

    def test_budget(self):
        assert latency_slo(objective=0.99).budget == pytest.approx(0.01)


class TestRules:
    def test_validation(self):
        with pytest.raises(SloError):
            BurnRateRule(long_window=1.0, short_window=2.0, threshold=1.0)
        with pytest.raises(SloError):
            BurnRateRule(long_window=1.0, short_window=0.5, threshold=0.0)

    def test_label(self):
        rule = BurnRateRule(long_window=4.0, short_window=1.0,
                            threshold=2.0)
        assert rule.label == "4s/1s x2"

    def test_default_ladder_shape(self):
        assert len(DEFAULT_RULES) == 2
        fast, slow = DEFAULT_RULES
        assert fast.short_window < slow.short_window
        assert fast.threshold > slow.threshold


class TestBurnRate:
    def test_idle_tracker_burns_nothing(self):
        tracker = SloTracker([latency_slo()])
        assert tracker.burn_rate("latency", now=10.0, window=1.0) == 0.0

    def test_burn_is_bad_fraction_over_budget(self):
        tracker = SloTracker([latency_slo(threshold=0.1, objective=0.99)])
        for i in range(98):
            tracker.observe(0.5, 0.01)
        tracker.observe(0.5, 9.9)
        tracker.observe(0.5, 9.9)
        # 2 bad / 100 total = 0.02 bad fraction over a 0.01 budget.
        assert tracker.burn_rate("latency", now=0.5,
                                 window=1.0) == pytest.approx(2.0)

    def test_window_excludes_old_buckets(self):
        tracker = SloTracker([latency_slo()], bucket_seconds=0.1)
        tracker.observe(0.05, 9.9)     # bad, at t=0.05
        tracker.observe(5.0, 0.01)     # good, at t=5
        assert tracker.burn_rate("latency", now=5.0, window=1.0) == 0.0
        assert tracker.burn_rate("latency", now=5.0, window=10.0) > 0.0

    def test_unknown_slo_rejected(self):
        tracker = SloTracker([latency_slo()])
        with pytest.raises(SloError):
            tracker.burn_rate("nope", now=0.0, window=1.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SloError):
            SloTracker([latency_slo(), latency_slo()])


class TestEvaluate:
    RULE = BurnRateRule(long_window=1.0, short_window=0.25, threshold=2.0)

    def saturated_tracker(self) -> SloTracker:
        tracker = SloTracker([latency_slo(threshold=0.1, objective=0.99)],
                             rules=(self.RULE,))
        for i in range(10):
            tracker.observe(0.2, 9.9)     # everything bad: burn = 100
        return tracker

    def test_alert_fires_once_while_saturated(self):
        tracker = self.saturated_tracker()
        first = tracker.evaluate(0.2)
        assert len(first) == 1
        assert first[0].slo == "latency"
        assert first[0].long_burn > self.RULE.threshold
        # Still saturated: edge-triggered, so no second alert.
        assert tracker.evaluate(0.21) == []
        assert len(tracker.alerts) == 1

    def test_alert_rearms_after_recovery(self):
        tracker = self.saturated_tracker()
        tracker.evaluate(0.2)
        # Far in the future every window is empty -> burn 0 -> clears.
        assert tracker.evaluate(100.0) == []
        for i in range(10):
            tracker.observe(200.0, 9.9)
        assert len(tracker.evaluate(200.0)) == 1
        assert len(tracker.alerts) == 2

    def test_both_windows_must_saturate(self):
        tracker = SloTracker([latency_slo(threshold=0.1, objective=0.99)],
                             rules=(self.RULE,), bucket_seconds=0.0625)
        # Bad traffic only in the long window's past, not the short one.
        tracker.observe(0.1, 9.9)
        tracker.observe(0.9, 0.01)
        long_burn = tracker.burn_rate("latency", 1.0,
                                      self.RULE.long_window)
        short_burn = tracker.burn_rate("latency", 1.0,
                                       self.RULE.short_window)
        assert long_burn > self.RULE.threshold
        assert short_burn == 0.0
        assert tracker.evaluate(1.0) == []   # short window is clean

    def test_emits_span_and_metrics(self):
        tracker = self.saturated_tracker()
        tracer = Tracer()
        registry = MetricsRegistry()
        fired = tracker.evaluate(0.2, tracer=tracer, registry=registry)
        assert fired
        spans = [s for s in tracer.spans if s.name == "slo.alert"]
        assert len(spans) == 1
        assert spans[0].attributes["slo"] == "latency"
        violations = registry.get("repro_slo_violations_total")
        [(labels, value)] = list(violations.samples())
        assert labels == {"slo": "latency"} and value == 1.0
        burn = registry.get("repro_slo_burn_rate")
        assert burn is not None and list(burn.samples())

    def test_status_rows(self):
        tracker = self.saturated_tracker()
        tracker.evaluate(0.2)
        rows = tracker.status(0.2)
        assert len(rows) == 1
        row = rows[0]
        assert row["slo"] == "latency"
        assert row["requests"] == 10
        assert row["bad"] == 10
        assert row["alerting"]
        assert row["alerts_fired"] == 1

    def test_status_respects_now(self):
        tracker = SloTracker([latency_slo()], bucket_seconds=0.1)
        tracker.observe(0.05, 0.01)
        tracker.observe(5.0, 0.01)
        early = tracker.status(0.1)[0]
        late = tracker.status(5.0)[0]
        assert early["requests"] == 1
        assert late["requests"] == 2
