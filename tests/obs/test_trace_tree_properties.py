"""Property tests for trace-tree invariants (hypothesis).

Whatever a query does — clean run, injected faults, CPU fallbacks,
quarantined devices — its spans must form a single rooted tree with
child intervals contained in parent intervals.  The profiler's exact
attribution (and the Chrome export's lane nesting) both lean on these
invariants, so they are pinned here over a randomized space of fault
plans rather than one happy path.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import paper_testbed
from repro.core import GpuAcceleratedEngine
from repro.faults import FAULT_SITES, FaultPlan, FaultRule

QUERIES = (
    "SELECT s_store, SUM(s_paid) AS paid, COUNT(*) AS c "
    "FROM sales GROUP BY s_store",
    "SELECT s_item, s_paid FROM sales ORDER BY s_paid DESC, s_item",
    "SELECT st_state, SUM(s_paid) AS paid "
    "FROM sales JOIN stores ON s_store = st_id GROUP BY st_state",
)


def _test_config(faults=None):
    config = paper_testbed()
    thresholds = dataclasses.replace(config.thresholds, t1_min_rows=5_000,
                                     sort_min_rows=5_000)
    return dataclasses.replace(config, thresholds=thresholds, faults=faults)


def assert_tree_invariants(tracer, expected_queries):
    """The contract every trace must satisfy, clean or faulty."""
    spans = tracer.spans
    by_id = {s.span_id: s for s in spans}
    assert len(by_id) == len(spans), "span ids must be unique"

    roots = [s for s in spans if s.parent_id is None]
    # One rooted tree per query, stamped with its query id.
    assert [r.attributes.get("query_id") for r in roots] == \
        list(expected_queries)
    assert len({r.trace_id for r in roots}) == len(roots)

    children: dict[int, list] = {}
    for span in spans:
        assert span.duration >= 0.0
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        assert parent is not None, f"{span.name}: dangling parent_id"
        assert parent.trace_id == span.trace_id
        # Containment: the child's interval sits inside the parent's.
        assert parent.start <= span.start, (parent.name, span.name)
        assert span.end <= parent.end, (parent.name, span.name)
        children.setdefault(parent.span_id, []).append(span)

    # Single tree: every span of a trace is reachable from its root.
    for root in roots:
        seen = set()
        stack = [root]
        while stack:
            node = stack.pop()
            seen.add(node.span_id)
            stack.extend(children.get(node.span_id, ()))
        trace_ids = {s.span_id for s in spans
                     if s.trace_id == root.trace_id}
        assert seen == trace_ids, "trace has spans unreachable from root"

    # The global span list is in simulated start order.
    starts = [s.start for s in spans]
    assert starts == sorted(starts)


def _run_and_check(plan):
    engine = GpuAcceleratedEngine(_run_and_check.catalog,
                                  config=_test_config(faults=plan),
                                  enable_join_offload=True)
    ids = []
    for i, sql in enumerate(QUERIES):
        engine.execute_sql(sql, query_id=f"q{i}")
        ids.append(f"q{i}")
    assert_tree_invariants(engine.tracer, ids)


def test_clean_run_tree_invariants(small_catalog):
    _run_and_check.catalog = small_catalog
    _run_and_check(None)


fault_plans = st.lists(
    st.builds(
        lambda site, device_id, p: FaultRule(
            site=site, device_id=device_id, probability=p,
            stall_seconds=1e-3 if site == "transfer" else 0.0),
        site=st.sampled_from(FAULT_SITES),
        device_id=st.sampled_from([-1, 0, 1]),
        p=st.sampled_from([0.3, 0.7, 1.0]),
    ),
    min_size=1, max_size=3,
).map(lambda rules: FaultPlan(rules=tuple(rules), seed=0))


@given(plan=fault_plans, seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_fault_plan_runs_keep_tree_invariants(small_catalog, plan, seed):
    """Faults add spans (fault.*, scheduler.*, retries) mid-flight; none
    of them may break the tree: still one root per query, still nested."""
    _run_and_check.catalog = small_catalog
    _run_and_check(plan.with_seed(seed))
