"""Serving telemetry: exact phase attribution, session span trees,
serving metrics/gauges, sweep byte-stability and the compare gate."""

from __future__ import annotations

import json

import pytest

from repro.obs import serving
from repro.obs.export import MetricsLog, prometheus_text
from repro.obs.profile import build_profile
from repro.obs.slo import SLObjective
from repro.sim import PhaseInterval, RequestTrace
from repro.workloads.driver import ConcurrentDriver, WorkloadDriver


@pytest.fixture(scope="module")
def driver(bd_catalog, bd_config):
    return WorkloadDriver(bd_catalog, bd_config)


@pytest.fixture(scope="module")
def concurrent(driver):
    from repro.obs.bench import workload_classes

    classes = workload_classes("bd_insights", driver)
    queries = [q for name in sorted(classes) for q in classes[name]]
    return ConcurrentDriver(
        driver, queries,
        slos=[SLObjective("latency", objective=0.99,
                          latency_threshold=0.4)])


@pytest.fixture(scope="module")
def run(concurrent):
    """An 8-session closed-loop run with full telemetry."""
    return concurrent.run(sessions=8)


def synthetic_request(stages, waits=(), start=0.0, end=1.0):
    return RequestTrace(user_id="u", query_id="q", loop=0, index=0,
                        start=start, end=end, stages=tuple(stages),
                        waits=tuple(waits))


class TestRequestPhases:
    def test_exact_tiling_with_gap(self):
        request = synthetic_request([
            PhaseInterval("cpu", 0.0, 0.3),
            PhaseInterval("gpu", 0.5, 1.0, device_id=0),
        ])
        phases = serving.request_phases(request)
        assert phases == [("cpu", 0.0, 0.3), ("queue", 0.3, 0.5),
                          ("gpu", 0.5, 1.0)]
        assert sum(t1 - t0 for _, t0, t1 in phases) == pytest.approx(
            request.elapsed)

    def test_gpu_wins_overlap(self):
        request = synthetic_request([
            PhaseInterval("cpu", 0.0, 1.0),
            PhaseInterval("gpu", 0.4, 0.6, device_id=1),
        ])
        phases = serving.request_phases(request)
        assert phases == [("cpu", 0.0, 0.4), ("gpu", 0.4, 0.6),
                          ("cpu", 0.6, 1.0)]

    def test_adjacent_same_kind_merged(self):
        request = synthetic_request([
            PhaseInterval("cpu", 0.0, 0.5),
            PhaseInterval("cpu", 0.5, 1.0),
        ])
        assert serving.request_phases(request) == [("cpu", 0.0, 1.0)]

    def test_no_stages_is_all_queue(self):
        request = synthetic_request([])
        assert serving.request_phases(request) == [("queue", 0.0, 1.0)]


class TestServingRun:
    def test_every_request_has_a_span_tree(self, run, concurrent):
        roots = [s for s in run.tracer.spans
                 if s.name == "session.request"]
        assert len(roots) == run.requests == 8 * len(concurrent.queries)
        children = {s.name for s in run.tracer.spans
                    if s.parent_id is not None}
        assert {"session.admission", "session.execute",
                "session.respond"} <= children

    def test_phase_spans_tile_requests_exactly(self, run):
        """The tentpole invariant: attribution sums to total time."""
        by_parent: dict = {}
        for span in run.tracer.spans:
            if span.name in ("session.execute", "session.queue_wait"):
                by_parent.setdefault(span.parent_id, 0.0)
                by_parent[span.parent_id] += span.duration
        roots = [s for s in run.tracer.spans
                 if s.name == "session.request"]
        for root in roots:
            accounted = by_parent.get(span_id(root), 0.0)
            assert accounted == pytest.approx(root.duration, abs=1e-12)

    def test_explain_analyze_includes_queue_wait(self, run):
        """A queued request's EXPLAIN ANALYZE profile charges queue_wait
        and still sums to 100% of the request."""
        queued = [r for r in run.sim.requests if r.queue_wait > 0.0]
        assert queued, "8-way contention should queue at least one request"
        request = queued[0]
        spans = one_request_spans(run, request)
        profile = build_profile(spans)
        totals = profile.component_totals()
        assert totals.get("queue_wait", 0.0) > 0.0
        assert sum(totals.values()) == pytest.approx(request.elapsed)
        assert "queue" in profile.to_text()

    def test_unqueued_profile_text_has_no_queue_column(self, run):
        clean = [r for r in run.sim.requests if r.queue_wait == 0.0]
        assert clean
        profile = build_profile(one_request_spans(run, clean[0]))
        assert "queue" not in profile.to_text()

    def test_histograms_agree_with_requests(self, run):
        assert run.hist.count == run.requests
        assert sum(h.count for h in run.hist_by_class.values()) \
            == run.requests
        assert sum(h.count for h in run.hist_by_path.values()) \
            == run.requests
        assert set(run.hist_by_path) <= {"cpu", "gpu"}

    def test_serving_metrics_present(self, run):
        text = prometheus_text(run.registry)
        assert "repro_queue_depth" in text
        assert "repro_session_active" in text
        assert "repro_requests_total" in text
        assert "repro_queue_wait_seconds_total" in text
        assert "repro_request_latency_seconds_bucket" in text

    def test_gauges_track_sim_highwater(self, run):
        queue = run.registry.get("repro_queue_depth")
        [(_, depth)] = list(queue.samples())
        assert depth == float(run.sim.max_queue_depth())
        active = run.registry.get("repro_session_active")
        [(_, sessions)] = list(active.samples())
        assert sessions == 8.0

    def test_metrics_jsonl_round_trip(self, run, tmp_path):
        """Satellite (a): serving gauges survive the JSONL export/restore
        cycle and re-export byte-identically."""
        path = str(tmp_path / "metrics.jsonl")
        written = MetricsLog(path).write(run.registry)
        assert written > 0
        restored = MetricsLog.restore(MetricsLog.read(path))
        assert prometheus_text(restored) == prometheus_text(run.registry)

    def test_snapshot_shape(self, run):
        snap = run.snapshot()
        assert snap["sessions"] == 8
        assert snap["completed"] + snap["in_flight"] <= run.requests
        assert snap["classes"]
        assert snap["slos"][0]["slo"] == "latency"
        rendered = serving.render_top(snap)
        assert "repro top" in rendered
        assert "sessions: " in rendered
        assert "-- SLOs --" in rendered

    def test_deterministic(self, concurrent):
        again = concurrent.run(sessions=8)
        fresh_hist = again.hist
        assert fresh_hist.to_dict()  # non-empty
        assert fresh_hist.p99 == concurrent.run(sessions=8).hist.p99


def span_id(span):
    return span.span_id


def one_request_spans(run, request):
    """The span tree of exactly one request (root + children)."""
    roots = [s for s in run.tracer.spans
             if s.name == "session.request"
             and s.attributes.get("session") == request.user_id
             and s.attributes.get("query_id") == request.query_id
             and s.attributes.get("loop") == request.loop
             and s.attributes.get("index") == request.index]
    assert len(roots) == 1
    root = roots[0]
    return [root] + [s for s in run.tracer.spans
                     if s.parent_id == root.span_id]


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self, bd_catalog, bd_config):
        result, runs = serving.run_sweep(
            bd_catalog, bd_config, scale=0.02, seed=11,
            classes=["complex"], session_counts=(1, 4))
        return result, runs

    def test_points_and_shape(self, sweep):
        result, runs = sweep
        assert sorted(result.points) == [1, 4]
        p1, p4 = result.points[1], result.points[4]
        assert p4.requests == 4 * p1.requests
        assert p4.p99_ms >= p1.p99_ms
        assert runs[4].sessions == 4

    def test_json_byte_stable(self, sweep, bd_catalog, bd_config):
        result, _ = sweep
        again, _ = serving.run_sweep(
            bd_catalog, bd_config, scale=0.02, seed=11,
            classes=["complex"], session_counts=(1, 4))
        assert again.to_json() == result.to_json()
        assert result.to_json().endswith("\n")

    def test_write_and_load(self, sweep, tmp_path):
        result, _ = sweep
        path = result.write(str(tmp_path / "BENCH_serving_sweep.json"))
        loaded = serving.load_sweep_baseline(path)
        assert loaded == json.loads(result.to_json())

    def test_load_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(serving.ServingError, match="no baseline"):
            serving.load_sweep_baseline(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": 99, "kind": "bench"}')
        with pytest.raises(serving.ServingError, match="not a serving"):
            serving.load_sweep_baseline(str(bad))

    def test_self_compare_passes(self, sweep):
        result, _ = sweep
        comparison = serving.compare_sweep(
            result, json.loads(result.to_json()))
        assert comparison.ok, comparison.failures

    def test_slowdown_trips_gate_both_ways(self, sweep, bd_catalog,
                                           bd_config):
        result, _ = sweep
        baseline = json.loads(result.to_json())
        slowed, _ = serving.run_sweep(
            bd_catalog, bd_config, scale=0.02, seed=11,
            classes=["complex"], session_counts=(1, 4), slowdown=1.5)
        comparison = serving.compare_sweep(slowed, baseline)
        assert not comparison.ok
        assert any("regressed" in f for f in comparison.failures)
        faster, _ = serving.run_sweep(
            bd_catalog, bd_config, scale=0.02, seed=11,
            classes=["complex"], session_counts=(1, 4), slowdown=0.5)
        comparison = serving.compare_sweep(faster, baseline)
        assert not comparison.ok
        assert any("improved" in f and "--update" in f
                   for f in comparison.failures)

    def test_config_and_ladder_mismatch_fail(self, sweep):
        result, _ = sweep
        baseline = json.loads(result.to_json())
        baseline["degree"] = 16
        comparison = serving.compare_sweep(result, baseline)
        assert any("config mismatch" in f for f in comparison.failures)
        baseline = json.loads(result.to_json())
        del baseline["points"]["4"]
        comparison = serving.compare_sweep(result, baseline)
        assert any("session ladder" in f for f in comparison.failures)

    def test_unknown_class_rejected(self, bd_catalog, bd_config):
        with pytest.raises(serving.ServingError, match="unknown class"):
            serving.run_sweep(bd_catalog, bd_config, scale=0.02, seed=11,
                              classes=["nope"], session_counts=(1,))


class TestTopInterconnectSection:
    def test_render_top_shows_per_link_utilization(self, run):
        snap = run.snapshot()
        stats = {
            "interconnect": {
                "nvlink": {"bytes_total": 450000,
                           "busy_seconds": 1.78125e-05,
                           "stall_seconds": 0.0},
                "pcie0": {"bytes_total": 149640,
                          "busy_seconds": 4.25e-05,
                          "stall_seconds": 1.5e-06},
            },
            "devices": [{"device_id": 0, "memory_reserved": 10,
                         "memory_peak_reserved": 20,
                         "memory_capacity": 100}],
        }
        rendered = serving.render_top(snap, engine_stats=stats)
        assert "-- interconnect --" in rendered
        assert "nvlink" in rendered and "450000 B" in rendered
        assert "busy 0.000018s" in rendered
        # Stall only renders when contention actually cost time.
        assert "stall 0.000002s" in rendered
        nvlink_line = [line for line in rendered.splitlines()
                       if line.startswith("nvlink")][0]
        assert "stall" not in nvlink_line
        assert "GPU 0: reserved 10 B (peak 20 B) of 100 B" in rendered

    def test_render_top_without_interconnect_omits_section(self, run):
        rendered = serving.render_top(run.snapshot(),
                                      engine_stats={"interconnect": {}})
        assert "-- interconnect --" not in rendered
