"""Streaming histogram invariants: bounded memory, exact mergeability,
and quantile error bounded by the bucket resolution (hypothesis)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.hist import (
    DEFAULT_RESOLUTION,
    HistogramError,
    StreamingHistogram,
)


latencies = st.floats(min_value=1e-7, max_value=1e4,
                      allow_nan=False, allow_infinity=False)


def exact_quantile(values: list[float], q: float) -> float:
    """Nearest-rank reference implementation."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestBuckets:
    def test_value_maps_into_its_bucket(self):
        hist = StreamingHistogram()
        for value in (1e-9, 1e-6, 0.001, 0.5, 1.0, 17.3, 1e4):
            index = hist.bucket_index(value)
            assert hist.bucket_upper(index) >= value
            if index > 0:
                assert hist.bucket_upper(index - 1) < value

    def test_observe_rejects_bad_input(self):
        hist = StreamingHistogram()
        with pytest.raises(HistogramError):
            hist.observe(-1.0)
        with pytest.raises(HistogramError):
            hist.observe(float("nan"))
        with pytest.raises(HistogramError):
            hist.observe(float("inf"))
        # Non-positive counts are a no-op, not an error.
        hist.observe(1.0, count=0)
        assert hist.count == 0

    def test_memory_is_bounded_by_buckets_not_samples(self):
        hist = StreamingHistogram()
        for i in range(100_000):
            hist.observe(0.001 + (i % 50) * 1e-5)
        assert hist.count == 100_000
        # 50 distinct values land in at most 50 buckets regardless of
        # how many samples were observed.
        assert len(hist) <= 50


class TestQuantiles:
    @given(st.lists(latencies, min_size=1, max_size=300),
           st.sampled_from([0.5, 0.95, 0.99, 0.999]))
    @settings(max_examples=60, deadline=None)
    def test_error_bounded_by_resolution(self, values, q):
        hist = StreamingHistogram()
        hist.observe_many(values)
        exact = exact_quantile(values, q)
        got = hist.quantile(q)
        assert exact <= got <= exact * (1.0 + DEFAULT_RESOLUTION) + 1e-12

    @given(st.lists(latencies, min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_order_independent(self, values):
        forward = StreamingHistogram()
        forward.observe_many(values)
        backward = StreamingHistogram()
        backward.observe_many(list(reversed(values)))
        for q in (0.5, 0.95, 0.99, 0.999):
            assert forward.quantile(q) == backward.quantile(q)

    def test_empty_histogram(self):
        hist = StreamingHistogram()
        assert hist.quantile(0.99) == 0.0
        assert hist.p50 == 0.0
        assert hist.mean == 0.0

    def test_quantile_clamps_q(self):
        hist = StreamingHistogram()
        hist.observe_many([1.0, 2.0, 3.0])
        assert hist.quantile(-1.0) == hist.quantile(0.0)  # lowest sample
        assert hist.quantile(1.5) == hist.quantile(1.0)   # highest sample

    def test_single_value_is_exact(self):
        hist = StreamingHistogram()
        hist.observe(7.0)
        for q in (0.5, 0.99, 1.0):
            assert hist.quantile(q) == 7.0


class TestMerge:
    @given(st.lists(latencies, min_size=0, max_size=150),
           st.lists(latencies, min_size=0, max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenated_stream(self, left, right):
        a = StreamingHistogram()
        a.observe_many(left)
        b = StreamingHistogram()
        b.observe_many(right)
        merged = StreamingHistogram.merged([a, b])

        single = StreamingHistogram()
        single.observe_many(left + right)

        assert merged.count == single.count
        assert merged.total == pytest.approx(single.total)
        if left or right:
            for q in (0.5, 0.95, 0.99, 0.999):
                assert merged.quantile(q) == single.quantile(q)

    def test_merge_rejects_mismatched_grids(self):
        a = StreamingHistogram()
        b = StreamingHistogram(resolution=0.05)
        with pytest.raises(HistogramError):
            a.merge(b)

    def test_merge_is_in_place_and_returns_self(self):
        a = StreamingHistogram()
        a.observe(1.0)
        b = StreamingHistogram()
        b.observe(2.0)
        out = a.merge(b)
        assert out is a
        assert a.count == 2


class TestSerialisation:
    @given(st.lists(latencies, min_size=0, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, values):
        hist = StreamingHistogram()
        hist.observe_many(values)
        clone = StreamingHistogram.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.to_dict() == hist.to_dict()
        if values:
            assert clone.p99 == hist.p99
