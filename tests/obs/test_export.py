"""Tests for the Chrome-trace, Prometheus, and JSONL exporters."""

import json

import pytest

from repro.obs.export import (
    TraceLog,
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def make_spans():
    tracer = Tracer()
    with tracer.span("query", query_id="q1"):
        with tracer.timed_span("op.scan", 0.1):
            pass
        with tracer.timed_span("gpu.kernel", 0.05, device_id=1,
                               kernel="groupby_shared"):
            pass
    return tracer.spans


class TestChromeTrace:
    def test_every_event_has_required_fields(self):
        doc = chrome_trace(make_spans())
        assert doc["traceEvents"]
        for event in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in ("X", "M")

    def test_lanes_split_cpu_and_gpu(self):
        doc = chrome_trace(make_spans())
        events = {e["name"]: e for e in doc["traceEvents"]
                  if e["ph"] == "X"}
        assert events["query"]["tid"] == 0
        assert events["op.scan"]["tid"] == 0
        assert events["gpu.kernel"]["tid"] == 2     # 1 + device_id
        thread_names = {e["tid"]: e["args"]["name"]
                        for e in doc["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert thread_names[0] == "CPU pool"
        assert thread_names[2] == "GPU 1"

    def test_timestamps_are_simulated_microseconds(self):
        doc = chrome_trace(make_spans())
        kernel = next(e for e in doc["traceEvents"]
                      if e["name"] == "gpu.kernel")
        assert kernel["ts"] == pytest.approx(0.1 * 1e6)
        assert kernel["dur"] == pytest.approx(0.05 * 1e6)

    def test_args_carry_span_identity(self):
        doc = chrome_trace(make_spans())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        root = next(e for e in events if e["name"] == "query")
        child = next(e for e in events if e["name"] == "op.scan")
        assert root["args"]["parent_id"] is None
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert child["args"]["trace_id"] == root["args"]["trace_id"]

    def test_write_round_trips_through_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(make_spans(), path) == path
        with open(path) as f:
            doc = json.load(f)
        assert doc["displayTimeUnit"] == "ms"
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 3


class TestPrometheusText:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "an x counter",
                    labelnames=("path",)).labels(path="gpu").inc(3)
        reg.gauge("repro_depth", "queue depth").set(2)
        h = reg.histogram("repro_lat_seconds", "latency",
                          buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return reg

    def test_structure_parses_line_by_line(self):
        text = prometheus_text(self.make_registry())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                assert len(line.split(maxsplit=3)) >= 3
                continue
            name_and_labels, value = line.rsplit(" ", 1)
            float(value)            # every sample value is numeric
            assert name_and_labels.startswith("repro_")

    def test_histogram_is_cumulative_with_inf(self):
        text = prometheus_text(self.make_registry())
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text
        assert "repro_lat_seconds_sum 5.55" in text

    def test_type_lines_match_metric_kind(self):
        text = prometheus_text(self.make_registry())
        assert "# TYPE repro_x_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat_seconds histogram" in text

    def test_empty_counter_emits_zero_sample(self):
        reg = MetricsRegistry()
        reg.counter("repro_nothing_total", "never incremented")
        assert "repro_nothing_total 0" in prometheus_text(reg)

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_e_total", "",
                    labelnames=("why",)).labels(why='a "quoted" \\ reason') \
            .inc()
        text = prometheus_text(reg)
        assert 'why="a \\"quoted\\" \\\\ reason"' in text


class TestTraceLog:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        spans = make_spans()
        assert TraceLog(path).write(spans) == len(spans)
        TraceLog(path).write(spans)          # appends
        records = TraceLog.read(path)
        assert len(records) == 2 * len(spans)
        assert records[0]["name"] == "query"
        assert records[0]["attributes"] == {"query_id": "q1"}

    def test_writes_to_file_object(self):
        import io

        buf = io.StringIO()
        TraceLog(buf).write(make_spans())
        lines = [json.loads(line) for line in
                 buf.getvalue().strip().splitlines()]
        assert [r["name"] for r in lines] == \
            ["query", "op.scan", "gpu.kernel"]
