"""The flight recorder: bounded ring, deterministic ordering, lossless
below capacity, auto-snapshots on incidents, and zero effect on
simulated time."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    AUTO_SNAPSHOT_NAMES,
    DROPPED_METRIC,
    FlightEvent,
    FlightRecorder,
    FlightSnapshot,
)
from repro.obs.tracing import Tracer
from repro.sim.clock import SimClock


@pytest.fixture()
def rig():
    """A tracer + registry pair with a recorder attached to both."""
    clock = SimClock()
    tracer = Tracer(clock)
    registry = MetricsRegistry()
    recorder = FlightRecorder(capacity=64, clock=clock, metrics=registry)
    recorder.attach_tracer(tracer)
    recorder.attach_registry(registry)
    return clock, tracer, registry, recorder


class TestRingInvariants:
    def test_lossless_below_capacity(self, rig):
        clock, tracer, _registry, recorder = rig
        for i in range(50):
            with tracer.span(f"work.{i}"):
                clock.advance(1e-3)
        assert recorder.dropped == 0
        assert len(recorder.events()) == 50
        names = [e.name for e in recorder.events()]
        assert names == [f"work.{i}" for i in range(50)]

    def test_ring_bounded_and_drop_counted(self, rig):
        clock, tracer, registry, recorder = rig
        for i in range(100):
            with tracer.span(f"work.{i}"):
                clock.advance(1e-3)
        assert len(recorder.events()) == 64
        assert recorder.dropped == 36
        # The oldest events were the ones evicted.
        assert recorder.events()[0].name == "work.36"
        from repro.obs.export import prometheus_text

        assert f"{DROPPED_METRIC} 36" in prometheus_text(registry)

    def test_events_ordered_by_sim_time_then_seq(self, rig):
        clock, tracer, _registry, recorder = rig
        # Nested spans complete inner-first but at identical end times;
        # instants land mid-flight.  The view must still be sorted.
        with tracer.span("outer"):
            clock.advance(2e-3)
            tracer.instant("mark")
            with tracer.span("inner"):
                clock.advance(1e-3)
        events = recorder.events()
        keys = [(e.time, e.seq) for e in events]
        assert keys == sorted(keys)
        assert [e.name for e in events] == ["mark", "inner", "outer"]

    def test_recorder_never_advances_sim_time(self, rig):
        clock, tracer, _registry, _recorder = rig
        with tracer.span("work"):
            clock.advance(5e-3)
        assert clock.now == pytest.approx(5e-3)

    def test_metric_deltas_recorded_with_labels(self, rig):
        clock, _tracer, registry, recorder = rig
        counter = registry.counter("repro_test_total", "t", ["site"])
        clock.advance(1e-3)
        counter.labels(site="launch").inc(3)
        events = [e for e in recorder.events() if e.kind == "metric"]
        assert len(events) == 1
        assert events[0].name == "repro_test_total"
        assert events[0].attributes == {"site": "launch", "amount": 3}
        assert events[0].time == pytest.approx(1e-3)

    def test_dropped_metric_does_not_feed_back(self, rig):
        _clock, _tracer, registry, recorder = rig
        # Bumping the recorder's own drop counter through the registry
        # must not re-enter the ring (it would loop forever on a full
        # ring otherwise).
        registry.counter(DROPPED_METRIC, "d").inc()
        assert [e for e in recorder.events() if e.name == DROPPED_METRIC] \
            == []


class TestSnapshots:
    def test_manual_snapshot_and_jsonl_round_trip(self, rig, tmp_path):
        clock, tracer, _registry, recorder = rig
        with tracer.span("q", query_id="Q1"):
            clock.advance(1e-3)
        snap = recorder.snapshot(trigger="manual")
        path = str(tmp_path / "snap.jsonl")
        snap.write_jsonl(path)
        loaded = FlightSnapshot.load(path)
        assert loaded.trigger == snap.trigger
        assert loaded.dropped == snap.dropped
        assert loaded.capacity == snap.capacity
        assert [e.to_dict() for e in loaded.events] \
            == [e.to_dict() for e in snap.events]

    def test_auto_snapshot_on_slo_alert_span(self, rig):
        clock, tracer, _registry, recorder = rig
        assert "slo.alert" in AUTO_SNAPSHOT_NAMES
        with tracer.span("healthy"):
            clock.advance(1e-3)
        assert len(recorder.snapshots) == 0
        tracer.record("slo.alert", start=clock.now, end=clock.now,
                      slo="latency", rule="page")
        assert len(recorder.snapshots) == 1
        assert recorder.snapshots[0].trigger == "slo.alert"
        assert any(e.name == "slo.alert"
                   for e in recorder.snapshots[0].events)

    def test_auto_snapshot_writes_files_when_dump_dir_set(
            self, rig, tmp_path):
        clock, tracer, _registry, recorder = rig
        recorder.dump_dir = str(tmp_path)
        tracer.record("slo.alert", start=clock.now, end=clock.now,
                      slo="latency", rule="page")
        jsonl = list(tmp_path.glob("flight_*_slo_alert.jsonl"))
        html = list(tmp_path.glob("flight_*_slo_alert.html"))
        assert len(jsonl) == 1 and len(html) == 1
        assert FlightSnapshot.load(str(jsonl[0])).trigger == "slo.alert"
        assert "<html" in html[0].read_text()

    def test_snapshot_html_is_self_contained(self, rig):
        clock, tracer, _registry, recorder = rig
        with tracer.span("q"):
            clock.advance(1e-3)
        page = recorder.snapshot().to_html()
        assert page.startswith("<!DOCTYPE html>")
        assert "q" in page

    def test_event_round_trips_through_dict(self):
        event = FlightEvent(time=0.5, seq=3, kind="span", name="x",
                            attributes={"a": 1})
        assert FlightEvent.from_dict(event.to_dict()) == event


class TestEngineIntegration:
    def test_engine_recorder_sees_dispatch_and_spans(self, gpu_engine):
        gpu_engine.execute_sql(
            "SELECT s_store, SUM(s_paid) AS paid FROM sales "
            "GROUP BY s_store", query_id="rec-1")
        kinds = {e.kind for e in gpu_engine.recorder.events()}
        assert "span" in kinds
        assert "metric" in kinds
        assert "dispatch" in kinds
        grants = [e for e in gpu_engine.recorder.events()
                  if e.kind == "dispatch"]
        assert all("granted" in e.attributes for e in grants)

    def test_recorder_does_not_change_simulated_latency(
            self, small_catalog):
        import dataclasses

        from repro.config import paper_testbed
        from repro.core import GpuAcceleratedEngine

        config = paper_testbed()
        thresholds = dataclasses.replace(config.thresholds,
                                         t1_min_rows=5_000,
                                         sort_min_rows=5_000)
        config = dataclasses.replace(config, thresholds=thresholds)
        sql = ("SELECT s_store, SUM(s_paid) AS paid FROM sales "
               "GROUP BY s_store")
        wired = GpuAcceleratedEngine(small_catalog, config=config)
        bare = GpuAcceleratedEngine(small_catalog, config=config)
        bare.recorder.clear()
        bare.tracer.listeners.clear()
        bare.registry.listeners.clear()
        assert wired.execute_sql(sql, query_id="t").elapsed_ms \
            == bare.execute_sql(sql, query_id="t").elapsed_ms

    def test_dump_flight_record(self, gpu_engine, tmp_path):
        gpu_engine.execute_sql(
            "SELECT s_store, COUNT(*) AS c FROM sales GROUP BY s_store",
            query_id="rec-2")
        out = gpu_engine.dump_flight_record(str(tmp_path))
        assert out["events"] > 0
        header = json.loads(
            open(out["jsonl"]).readline())
        assert header["kind"] == "flight_header"
        assert open(out["html"]).read().startswith("<!DOCTYPE html>")

    def test_capacity_comes_from_config(self, small_catalog):
        import dataclasses

        from repro.config import paper_testbed
        from repro.core import GpuAcceleratedEngine

        config = dataclasses.replace(paper_testbed(), recorder_capacity=32)
        engine = GpuAcceleratedEngine(small_catalog, config=config)
        assert engine.recorder.capacity == 32
