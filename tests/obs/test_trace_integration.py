"""End-to-end trace of a BD Insights query through the hybrid engine.

The golden check of the observability stack: one complex query must
produce a single span tree covering plan, operators, offload decisions,
transfers and kernels, all sharing one trace id — and the registry must
expose the kernel latency histogram the paper's monitoring view needs.
"""

import pytest

from repro.core.accelerator import GpuAcceleratedEngine
from repro.workloads.bdinsights import queries_by_category
from repro.workloads.query import QueryCategory


@pytest.fixture(scope="module")
def traced_engine(bd_catalog, bd_config):
    engine = GpuAcceleratedEngine(bd_catalog, config=bd_config)
    for query in queries_by_category(QueryCategory.COMPLEX)[:2]:
        engine.execute_sql(query.sql, query_id=query.query_id)
    return engine


class TestSpanTree:
    def test_one_root_per_query(self, traced_engine):
        roots = traced_engine.tracer.roots()
        assert len(roots) == 2
        assert [r.name for r in roots] == ["query", "query"]
        assert roots[0].trace_id != roots[1].trace_id
        assert {r.attributes["query_id"] for r in roots} == {"C1", "C2"}

    def test_parent_child_integrity(self, traced_engine):
        spans = traced_engine.tracer.spans
        by_id = {s.span_id: s for s in spans}
        assert len(by_id) == len(spans)         # span ids unique
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.trace_id == span.trace_id
            assert parent.start <= span.start
            assert span.end <= parent.end

    def test_covers_every_layer(self, traced_engine):
        tracer = traced_engine.tracer
        trace = tracer.trace(tracer.roots()[0].trace_id)
        names = {s.name for s in trace}
        for expected in ("query", "plan", "op.scan", "op.groupby",
                         "pathselect.groupby", "offload.decision",
                         "moderator.run", "gpu.launch", "gpu.transfer_in",
                         "gpu.kernel", "gpu.transfer_out"):
            assert expected in names, f"missing span {expected}"

    def test_kernel_span_sits_on_a_device_lane(self, traced_engine):
        kernels = [s for s in traced_engine.tracer.spans
                   if s.name == "gpu.kernel"]
        assert kernels
        for span in kernels:
            assert span.attributes["device_id"] >= 0
            assert span.attributes["kernel"]
            assert span.duration > 0

    def test_groupby_spans_carry_estimate_vs_actual(self, traced_engine):
        """Satellite of the profiler PR: every group-by span reports the
        optimizer estimate and the actual group count; GPU-path spans add
        the KMV refinement and its relative error."""
        groupbys = [s for s in traced_engine.tracer.spans
                    if s.name == "op.groupby"]
        assert groupbys
        for span in groupbys:
            assert "estimated_groups" in span.attributes
            assert span.attributes["actual_groups"] > 0
        gpu_spans = [s for s in groupbys if "kmv_groups" in s.attributes]
        assert gpu_spans
        for span in gpu_spans:
            assert span.attributes["kmv_groups"] > 0
            assert span.attributes["kmv_relative_error"] >= 0.0

    def test_offload_decision_names_operator_and_path(self, traced_engine):
        decisions = [s for s in traced_engine.tracer.spans
                     if s.name == "offload.decision"]
        assert decisions
        operators = {s.attributes["operator"] for s in decisions}
        # A fused chain's decision subsumes its group-by's.
        assert operators & {"groupby", "fused"}
        assert all(s.attributes["path"] for s in decisions)
        assert any(s.attributes["path"] in ("gpu", "gpu-fused")
                   for s in decisions)


class TestExports:
    def test_chrome_trace_schema(self, traced_engine):
        doc = traced_engine.chrome_trace()
        events = doc["traceEvents"]
        assert all({"name", "ph", "ts", "pid", "tid"} <= set(e)
                   for e in events)
        lanes = {e["tid"] for e in events if e["ph"] == "X"}
        assert 0 in lanes                       # CPU pool
        assert any(tid >= 1 for tid in lanes)   # at least one GPU lane

    def test_prometheus_has_kernel_latency_histogram(self, traced_engine):
        text = traced_engine.prometheus()
        assert "# TYPE repro_kernel_latency_seconds histogram" in text
        assert "repro_kernel_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "repro_queries_total 2" in text

    def test_prometheus_has_kmv_error_histogram(self, traced_engine):
        text = traced_engine.prometheus()
        assert "# TYPE repro_kmv_relative_error histogram" in text
        assert 'repro_kmv_relative_error_bucket{le="0"}' in text
        assert "repro_kmv_relative_error_count" in text

    def test_prometheus_has_kernel_and_transfer_totals(self, traced_engine):
        text = traced_engine.prometheus()
        assert "# TYPE repro_kernel_seconds_total counter" in text
        assert "# TYPE repro_transfer_bytes_total counter" in text
        assert 'repro_transfer_bytes_total{direction="in"}' in text

    def test_monitor_report_still_renders(self, traced_engine):
        report = traced_engine.monitor.report()
        assert "performance monitor" in report
        assert "queries=2" in report
