"""Differential profiling: the serialised profile must round-trip
exactly, a self-diff must be exactly zero, and per-operator deltas must
sum to the end-to-end delta — the accounting identities ``repro
profile-diff`` and ``bench --compare --explain`` rest on."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.diff import (
    DiffError,
    diff_profiles,
    explain_bench_delta,
    load_profile_sidecar,
    operator_paths,
    profile_from_dict,
    profile_to_dict,
    scale_profile_dict,
    sidecar_path,
    write_profile_sidecar,
)
from repro.obs.profile import COMPONENTS


# ---------------------------------------------------------------------------
# Hypothesis: random well-formed profile documents
# ---------------------------------------------------------------------------

_times = st.floats(min_value=0.0, max_value=10.0, allow_nan=False,
                   allow_infinity=False, width=32)
_names = st.sampled_from(
    ["op.scan", "op.groupby", "op.sort", "op.join", "plan", "op.fused"])


@st.composite
def _node_dicts(draw, depth=0, start=0.0, span_ids=None):
    """A random operator subtree honouring the to_dict() schema: child
    windows nested inside the parent's, unique span ids, sparse
    components."""
    if span_ids is None:
        span_ids = iter(range(1, 10_000))
    components = draw(st.dictionaries(
        st.sampled_from(COMPONENTS), _times, max_size=3))
    own = sum(components.values())
    # Children laid out back-to-back, own self-time after them: every
    # node's window is exactly children + self components, so the
    # engine's sum-to-total invariant holds by construction.
    children = []
    child_start = start
    n_children = draw(st.integers(0, 2)) if depth < 3 else 0
    for _ in range(n_children):
        child = draw(_node_dicts(depth=depth + 1, start=child_start,
                                 span_ids=span_ids))
        children.append(child)
        child_start = child["end"]
    end = child_start + own
    return {
        "name": draw(_names) if depth else "query",
        "span_id": next(span_ids),
        "start": start,
        "end": end,
        "duration": end - start,
        "attributes": draw(st.dictionaries(
            st.sampled_from(["query_id", "rows", "gpu"]),
            st.one_of(st.integers(0, 99), st.text(max_size=5)),
            max_size=2)),
        "self_components": {c: v for c, v in components.items() if v},
        "device_seconds": {
            str(d): draw(_times)
            for d in draw(st.sets(st.integers(0, 3), max_size=2))
        },
        "children": children,
    }


@st.composite
def _profile_dicts(draw):
    root = draw(_node_dicts())

    def totals(node, acc):
        for c, v in node["self_components"].items():
            acc[c] = acc.get(c, 0.0) + v
        for child in node["children"]:
            totals(child, acc)
        return acc

    return {
        "query_id": draw(st.text(min_size=1, max_size=8)),
        "trace_id": draw(st.integers(1, 99)),
        "degree": draw(st.integers(1, 64)),
        "gpu_enabled": draw(st.booleans()),
        "duration_seconds": root["duration"],
        "component_totals": {c: v for c, v in totals(root, {}).items()
                             if v},
        "bytes_in": draw(st.integers(0, 1 << 30)),
        "bytes_out": draw(st.integers(0, 1 << 30)),
        "operators": root,
    }


class TestRoundTrip:
    @given(data=_profile_dicts())
    @settings(max_examples=40, deadline=None)
    def test_profile_json_profile_is_exact(self, data):
        """QueryProfile -> JSON -> QueryProfile keeps every node, time
        and component bit-identical."""
        wire = json.loads(json.dumps(data))
        profile = profile_from_dict(wire)
        again = profile_to_dict(profile)
        for key in ("query_id", "trace_id", "degree", "gpu_enabled",
                    "duration_seconds", "bytes_in", "bytes_out",
                    "operators"):
            assert again[key] == data[key], key

    @given(data=_profile_dicts())
    @settings(max_examples=40, deadline=None)
    def test_self_diff_is_exactly_zero(self, data):
        """profile-diff(self, self) is exactly zero — not approximately:
        equal inputs must produce 0.0 for the total and every operator."""
        diff = diff_profiles(data, data)
        assert diff.total_delta == 0.0
        assert diff.attributed_delta == 0.0
        for op in diff.operators:
            assert op.status == "matched"
            assert op.self_delta == 0.0
            assert all(v == 0.0 for v in op.component_delta().values())
            assert all(v == 0.0 for v in op.device_delta().values())

    @given(data=_profile_dicts())
    @settings(max_examples=40, deadline=None)
    def test_operator_deltas_sum_to_total_delta(self, data):
        """The exact-accounting invariant under an arbitrary uniform
        perturbation: per-operator self deltas sum to the end-to-end
        delta."""
        other = scale_profile_dict(data, 1.5)
        diff = diff_profiles(data, other)
        assert diff.attributed_delta == pytest.approx(
            diff.total_delta, abs=1e-9)
        by_component = sum(diff.component_totals().values())
        assert by_component == pytest.approx(diff.total_delta, abs=1e-9)


class TestEngineProfiles:
    @pytest.fixture(scope="class")
    def profile_dict(self, bd_catalog, bd_config):
        from repro.core.accelerator import GpuAcceleratedEngine
        from repro.workloads.bdinsights import queries_by_category
        from repro.workloads.query import QueryCategory

        engine = GpuAcceleratedEngine(bd_catalog, config=bd_config)
        query = queries_by_category(QueryCategory.COMPLEX)[0]
        _result, profile = engine.profile_sql(query.sql,
                                              query_id=query.query_id)
        return profile.to_dict()

    def test_real_profile_round_trips(self, profile_dict):
        again = profile_to_dict(profile_from_dict(profile_dict))
        for key in ("duration_seconds", "component_totals", "operators"):
            assert again[key] == profile_dict[key]

    def test_real_profile_self_diff_zero(self, profile_dict):
        diff = diff_profiles(profile_dict, profile_dict)
        assert diff.total_delta == 0.0
        assert all(op.self_delta == 0.0 for op in diff.operators)

    def test_component_scaling_attributes_to_that_component(
            self, profile_dict):
        """Stretching only the kernel component must surface as a
        kernel-majority delta with the total still exactly accounted."""
        slowed = scale_profile_dict(profile_dict, 3.0, component="kernel")
        diff = diff_profiles(profile_dict, slowed)
        assert diff.total_delta > 0.0
        totals = diff.component_totals()
        assert totals["kernel"] == pytest.approx(diff.total_delta,
                                                 abs=1e-9)
        assert all(v == pytest.approx(0.0, abs=1e-9)
                   for c, v in totals.items() if c != "kernel")
        component, _delta = max(totals.items(), key=lambda cv: abs(cv[1]))
        assert component == "kernel"

    def test_device_axis_populated_on_offloaded_profile(
            self, profile_dict):
        devices = set()

        def walk(node):
            devices.update(node.get("device_seconds", {}))
            for child in node.get("children", []):
                walk(child)

        walk(profile_dict["operators"])
        assert devices, "offloaded profile carries no device attribution"

    def test_added_and_removed_operators_reported(self, profile_dict):
        pruned = json.loads(json.dumps(profile_dict))
        victims = pruned["operators"]["children"]
        assert victims, "fixture plan has no child to prune"
        victims.pop()
        diff = diff_profiles(pruned, profile_dict)
        statuses = {op.status for op in diff.operators}
        assert "added" in statuses
        back = diff_profiles(profile_dict, pruned)
        assert "removed" in {op.status for op in back.operators}

    def test_occurrence_indices_disambiguate_same_name_siblings(
            self, profile_dict):
        paths = [p for p, _ in operator_paths(
            profile_from_dict(profile_dict).root)]
        assert len(paths) == len(set(paths)), "operator paths collide"


class TestSidecars:
    def test_sidecar_path_derivation(self):
        assert sidecar_path("a/b/BENCH_x.json") == "a/b/PROFILE_x.json"
        with pytest.raises(DiffError):
            sidecar_path("a/b/RESULTS_x.json")

    def test_write_load_round_trip_is_byte_stable(self, tmp_path):
        profiles = {"Q1": {"duration_seconds": 1.0, "operators": {
            "name": "query", "span_id": 1, "start": 0.0, "end": 1.0,
            "duration": 1.0, "attributes": {}, "self_components": {},
            "device_seconds": {}, "children": []}}}
        p1 = str(tmp_path / "PROFILE_a.json")
        p2 = str(tmp_path / "PROFILE_b.json")
        write_profile_sidecar(p1, profiles, meta={"workload": "w"})
        write_profile_sidecar(p2, profiles, meta={"workload": "w"})
        assert open(p1, "rb").read() == open(p2, "rb").read()
        doc = load_profile_sidecar(p1)
        assert doc["profiles"] == profiles

    def test_missing_sidecar_names_the_remedy(self, tmp_path):
        with pytest.raises(DiffError, match="--update"):
            load_profile_sidecar(str(tmp_path / "PROFILE_none.json"))

    def test_committed_sidecars_exist_and_parse(self):
        for workload in ("bd_insights", "cognos_rolap"):
            doc = load_profile_sidecar(
                f"benchmarks/baselines/PROFILE_{workload}.json")
            assert doc["profiles"], workload
            for qid, data in doc["profiles"].items():
                assert diff_profiles(data, data).total_delta == 0.0, qid


class TestBenchExplanation:
    def test_explanation_names_top_component_and_operators(self):
        doc = load_profile_sidecar(
            "benchmarks/baselines/PROFILE_bd_insights.json")
        baseline = doc["profiles"]
        current = {qid: scale_profile_dict(data, 2.0, component="kernel")
                   for qid, data in baseline.items()}
        explanation = explain_bench_delta(current, baseline)
        assert explanation.total_delta > 0.0
        text = explanation.to_text()
        assert "top component: kernel" in text
        assert "top regressing operators:" in text

    def test_explanation_skips_non_overlapping_queries(self):
        base = {"Q1": {"duration_seconds": 1.0, "operators": {
            "name": "query", "span_id": 1, "start": 0.0, "end": 1.0,
            "duration": 1.0, "attributes": {}, "self_components": {},
            "device_seconds": {}, "children": []}}}
        explanation = explain_bench_delta(base, {})
        assert explanation.diffs == {}
        assert any("only in current" in s for s in explanation.skipped)
