"""Unit tests for the simulated-time span tracer."""

import pytest

from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanTree:
    def test_root_gets_fresh_trace_id(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans
        assert a.parent_id is None and b.parent_id is None
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_children_inherit_trace_id_and_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                grandchild = tracer.instant("mark")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_id == child.span_id
        assert tracer.roots() == [root]
        assert tracer.children_of(root.span_id) == [child]
        assert tracer.trace(root.trace_id) == [root, child, grandchild]

    def test_attributes_are_stored(self):
        tracer = Tracer()
        with tracer.span("op.scan", table="store_sales", rows=7) as span:
            pass
        assert span.attributes == {"table": "store_sales", "rows": 7}

    def test_clear_drops_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans == []


class TestClock:
    def test_enclosing_span_ends_at_clock_position(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.advance(0.5)
        assert outer.start == 0.0
        assert outer.end == pytest.approx(0.5)
        assert outer.duration == pytest.approx(0.5)

    def test_timed_span_advances_by_duration(self):
        tracer = Tracer()
        with tracer.timed_span("kernel", 0.25) as span:
            pass
        assert span.duration == pytest.approx(0.25)
        assert tracer.now == pytest.approx(0.25)

    def test_sibling_spans_do_not_overlap(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.timed_span("a", 0.1) as a:
                pass
            with tracer.timed_span("b", 0.2) as b:
                pass
        assert a.end == pytest.approx(b.start)
        assert b.end == pytest.approx(0.3)

    def test_negative_advance_is_clamped(self):
        tracer = Tracer()
        tracer.advance(-1.0)
        assert tracer.now == 0.0

    def test_instant_has_zero_duration(self):
        tracer = Tracer()
        tracer.advance(0.125)
        mark = tracer.instant("decision")
        assert mark.start == pytest.approx(0.125)
        assert mark.duration == 0.0

    def test_span_to_dict_round_trips(self):
        tracer = Tracer()
        with tracer.timed_span("kernel", 0.5, device_id=1) as span:
            pass
        d = span.to_dict()
        assert d["name"] == "kernel"
        assert d["attributes"] == {"device_id": 1}
        assert Span(**d).duration == pytest.approx(0.5)


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("a"):
            tracer.advance(1.0)
        with tracer.timed_span("b", 2.0):
            pass
        tracer.instant("c")
        assert tracer.spans == []
        assert tracer.now == 0.0

    def test_shared_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True
