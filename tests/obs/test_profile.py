"""The EXPLAIN ANALYZE profiler: attribution must be exact, the decision
sections must reflect what the engine actually did, and every rendering
must be deterministic."""

import json
from pathlib import Path

import pytest

from repro.core.accelerator import GpuAcceleratedEngine
from repro.obs.profile import COMPONENTS, ProfileError, build_profile
from repro.workloads.bdinsights import queries_by_category
from repro.workloads.query import QueryCategory

COMPLEX = queries_by_category(QueryCategory.COMPLEX)


@pytest.fixture(scope="module")
def profiled(bd_catalog, bd_config):
    """One engine + the profiles of the first two complex queries."""
    engine = GpuAcceleratedEngine(bd_catalog, config=bd_config)
    profiles = {}
    for query in COMPLEX[:2]:
        _result, profiles[query.query_id] = engine.profile_sql(
            query.sql, query_id=query.query_id)
    return engine, profiles


class TestAttribution:
    def test_components_sum_to_query_total(self, profiled):
        """The acceptance criterion: per-operator attributed times sum to
        the query's total simulated time (to float rounding)."""
        _engine, profiles = profiled
        for profile in profiles.values():
            accounted = sum(profile.component_totals().values())
            assert accounted == pytest.approx(profile.duration, abs=1e-12)

    def test_every_self_component_non_negative(self, profiled):
        _engine, profiles = profiled
        for profile in profiles.values():
            for node in profile.operators():
                for component, seconds in node.self_components.items():
                    assert seconds >= 0.0, (node.name, component)

    def test_gpu_components_present_on_offloaded_query(self, profiled):
        _engine, profiles = profiled
        profile = profiles["C1"]
        totals = profile.component_totals()
        assert totals["transfer_in"] > 0
        assert totals["kernel"] > 0
        assert totals["transfer_out"] > 0
        assert totals["launch_overhead"] > 0
        assert totals["cpu"] > 0

    def test_launch_overhead_split_out_of_kernel_time(self, profiled):
        """The gpu.kernel span embeds the launch overhead; the profiler
        must report them as separate components.  A stream-pipelined
        launch pays the overhead once per chunk, not once per launch."""
        engine, profiles = profiled
        overhead = engine.config.gpus[0].kernel_launch_overhead
        profile = profiles["C1"]
        chunked = sum(e["chunks"] for e in profile.pipeline_events)
        serial = len(profile.occupancy) - len(profile.pipeline_events)
        assert profile.component_totals()["launch_overhead"] == \
            pytest.approx(overhead * (serial + chunked))

    def test_operator_tree_mirrors_span_nesting(self, profiled):
        _engine, profiles = profiled
        profile = profiles["C1"]
        assert profile.root.name == "query"
        names = [n.name for n in profile.operators()]
        assert "plan" in names
        assert any(n.startswith("op.") for n in names)
        for node in profile.operators():
            for child in node.children:
                assert child.depth == node.depth + 1
                assert node.span.start <= child.span.start
                assert child.span.end <= node.span.end


class TestStreamPipeline:
    def test_pipelined_launches_collected(self, profiled):
        _engine, profiles = profiled
        events = profiles["C1"].pipeline_events
        assert events
        for e in events:
            assert e["chunks"] > 1
            assert e["operator"].startswith("op.")
            assert e["overlapped_seconds"] < e["serial_seconds"]
            assert e["saved_seconds"] == pytest.approx(
                e["serial_seconds"] - e["overlapped_seconds"])

    def test_savings_stay_out_of_component_attribution(self, profiled):
        """The saved seconds are a counterfactual (serial minus
        overlapped), not spent time: component totals must still sum to
        the query's actual duration even when savings are non-zero."""
        _engine, profiles = profiled
        profile = profiles["C1"]
        assert profile.pipeline_summary()["saved_seconds"] > 0
        accounted = sum(profile.component_totals().values())
        assert accounted == pytest.approx(profile.duration, abs=1e-12)

    def test_text_report_has_pipeline_section(self, profiled):
        _engine, profiles = profiled
        text = profiles["C1"].to_text()
        assert "-- stream pipeline --" in text
        assert "overlap saved by operator:" in text

    def test_dict_report_has_pipeline_section(self, profiled):
        _engine, profiles = profiled
        doc = profiles["C1"].to_dict()
        section = doc["stream_pipeline"]
        assert section["summary"]["launches"] == len(
            profiles["C1"].pipeline_events)
        assert section["events"]
        assert section["saved_by_operator"]

    def test_saved_by_operator_sums_to_summary(self, profiled):
        _engine, profiles = profiled
        profile = profiles["C1"]
        assert sum(profile.overlap_saved_by_operator().values()) == \
            pytest.approx(profile.pipeline_summary()["saved_seconds"])


class TestDecisionSections:
    def test_groupby_verdict_carries_thresholds_and_counts(self, profiled):
        _engine, profiles = profiled
        verdicts = [v for v in profiles["C1"].verdicts
                    if v.operator == "groupby"]
        assert verdicts
        v = verdicts[0]
        assert v.path == "gpu"
        assert set(v.thresholds) == {"t1", "t2", "t3"}
        assert all(t is not None for t in v.thresholds.values())
        assert v.rows > 0
        assert v.actual_groups is not None and v.actual_groups > 0
        assert v.kmv_groups is not None
        assert v.kmv_relative_error is not None
        assert v.kmv_relative_error >= 0.0

    def test_kernel_choice_recorded(self, profiled):
        _engine, profiles = profiled
        choices = profiles["C1"].kernel_choices
        assert choices
        assert all(c.kernel for c in choices)

    def test_occupancy_within_query_window(self, profiled):
        _engine, profiles = profiled
        profile = profiles["C1"]
        assert profile.occupancy
        for s in profile.occupancy:
            assert s.device_id >= 0
            assert profile.root.span.start <= s.start <= s.end
            assert s.end <= profile.root.span.end
        for device_id, busy in profile.device_busy_seconds().items():
            assert 0 < busy <= profile.duration

    def test_offload_decisions_joined_from_monitor(self, profiled):
        engine, profiles = profiled
        decisions = profiles["C1"].decisions
        assert decisions == engine.monitor.decisions_for("C1")
        assert any(d.device_id >= 0 for d in decisions)

    def test_bytes_moved_totals(self, profiled):
        _engine, profiles = profiled
        profile = profiles["C1"]
        assert profile.bytes_in > 0
        assert profile.bytes_out > 0
        assert profile.bytes_moved == profile.bytes_in + profile.bytes_out


class TestRenderings:
    def test_text_report_sections(self, profiled):
        _engine, profiles = profiled
        text = profiles["C1"].to_text()
        assert text.startswith("EXPLAIN ANALYZE")
        for section in ("path selection (Figure 3)", "kernel moderation",
                        "device occupancy", "accounted:", "(100.00%)"):
            assert section in text

    def test_text_is_deterministic(self, bd_catalog, bd_config):
        texts = []
        for _ in range(2):
            engine = GpuAcceleratedEngine(bd_catalog, config=bd_config)
            _result, profile = engine.profile_sql(COMPLEX[0].sql,
                                                  query_id="C1")
            texts.append(profile.to_text())
        assert texts[0] == texts[1]

    def test_json_round_trips(self, profiled):
        _engine, profiles = profiled
        doc = json.loads(profiles["C1"].to_json())
        assert doc["query_id"] == "C1"
        assert doc["duration_seconds"] > 0
        assert doc["operators"]["name"] == "query"
        assert doc["path_selection"]
        assert doc["kernel_choices"]
        assert set(doc["component_totals"]) <= set(COMPONENTS)

    def test_html_is_self_contained(self, profiled, tmp_path):
        from repro.obs.profile import write_html

        _engine, profiles = profiled
        html = profiles["C1"].to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "http" not in html.split("</style>")[1]   # no external assets
        assert "op.groupby" in html
        assert "GPU 0" in html
        path = write_html(profiles["C1"], str(tmp_path / "p.html"))
        assert Path(path).read_text() == html


class TestEdges:
    def test_missing_query_raises(self, profiled):
        engine, _profiles = profiled
        with pytest.raises(ProfileError):
            build_profile(engine.tracer, query_id="never-ran")
        with pytest.raises(ProfileError):
            build_profile([], query_id=None)

    def test_cpu_only_engine_profiles_too(self, bd_catalog):
        from repro.blu.engine import BluEngine
        from repro.obs.tracing import Tracer

        engine = BluEngine(bd_catalog, tracer=Tracer())
        engine.execute_sql(COMPLEX[0].sql, query_id="cpu")
        profile = build_profile(engine.tracer, query_id="cpu")
        assert not profile.gpu_enabled
        assert profile.occupancy == []
        totals = profile.component_totals()
        assert sum(totals.values()) == pytest.approx(profile.duration,
                                                     abs=1e-12)
        assert totals["kernel"] == 0.0

    def test_profile_under_faults_still_sums(self, bd_catalog, bd_config):
        import dataclasses

        from repro.faults import FaultPlan

        plan = FaultPlan.parse("launch:p=1.0")
        engine = GpuAcceleratedEngine(
            bd_catalog, config=dataclasses.replace(bd_config, faults=plan))
        _result, profile = engine.profile_sql(COMPLEX[0].sql,
                                              query_id="faulty")
        accounted = sum(profile.component_totals().values())
        assert accounted == pytest.approx(profile.duration, abs=1e-12)
        names = {e["name"] for e in profile.scheduler_events}
        assert "fault.injected" in names or "fault.fallback" in names


class TestShardSection:
    """The ``-- shards --`` section: what scaled out, over which links."""

    @pytest.fixture(scope="class")
    def sharded_profile(self, sales_table):
        import dataclasses

        from repro.blu import Catalog
        from repro.config import paper_testbed

        catalog = Catalog()
        catalog.register(sales_table)
        config = paper_testbed()
        thresholds = dataclasses.replace(config.thresholds,
                                         t1_min_rows=5_000,
                                         sort_min_rows=5_000)
        config = dataclasses.replace(
            config, thresholds=thresholds,
            gpus=tuple(config.gpus[0] for _ in range(4)),
            shard_enabled=True, nvlink_enabled=True, fusion_enabled=False)
        engine = GpuAcceleratedEngine(catalog, config=config)
        _result, profile = engine.profile_sql(
            "SELECT s_item, SUM(s_qty) AS q, COUNT(*) AS c "
            "FROM sales GROUP BY s_item", query_id="sharded")
        return profile

    def test_text_report_has_shards_section(self, sharded_profile):
        text = sharded_profile.to_text()
        assert "-- shards --" in text
        assert "shards=4 (gpu=4, cpu=0, rerouted=0)" in text
        assert "per-link utilization:" in text
        assert "nvlink" in text
        for device in range(4):
            assert f"pcie{device}" in text

    def test_dict_report_summarises_the_split(self, sharded_profile):
        shards = sharded_profile.to_dict()["shards"]
        summary = shards["summary"]
        assert summary["operators"] >= 1
        assert summary["shards"] == 4 and summary["gpu_shards"] == 4
        assert summary["exchange_bytes"] > 0
        assert [e["operator"] for e in shards["events"]] == ["groupby"]

    def test_links_cover_every_shard_and_the_exchange(self,
                                                      sharded_profile):
        links = sharded_profile.link_utilization()
        assert set(links) == {"nvlink", "pcie0", "pcie1", "pcie2", "pcie3"}
        for stats in links.values():
            assert stats["bytes_total"] > 0
            assert stats["busy_seconds"] > 0

    def test_shard_verdict_joined_from_pathselect(self, sharded_profile):
        verdicts = [v for v in sharded_profile.verdicts
                    if v.operator == "groupby-shard"]
        assert verdicts and verdicts[0].path == "gpu-sharded"

    def test_unsharded_profiles_omit_the_section(self, profiled):
        _engine, profiles = profiled
        for profile in profiles.values():
            assert "-- shards --" not in profile.to_text()
