"""Unit tests for the dependency-free metrics primitives."""

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.0)
        assert c.value == 3.0

    def test_negative_inc_rejected(self):
        c = Counter("c_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labels_partition_values(self):
        c = Counter("c_total", labelnames=("path",))
        c.labels(path="gpu").inc()
        c.labels(path="gpu").inc()
        c.labels(path="cpu").inc()
        assert c.labels(path="gpu").value == 2.0
        assert dict((tuple(lab.items()), v) for lab, v in c.samples()) == {
            (("path", "cpu"),): 1.0,
            (("path", "gpu"),): 2.0,
        }

    def test_wrong_labels_rejected(self):
        c = Counter("c_total", labelnames=("path",))
        with pytest.raises(MetricError):
            c.labels(wrong="x")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_set_max_is_high_water(self):
        g = Gauge("g", labelnames=("device",))
        g.labels(device=0).set_max(10)
        g.labels(device=0).set_max(3)
        g.labels(device=0).set_max(12)
        assert g.labels(device=0).value == 12.0


class TestHistogram:
    def test_bucket_counts(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # le-semantics: 0.5 and 1.0 land in the le=1 bucket.
        assert h.bucket_counts() == [2, 1, 1, 1]
        state = next(iter(h.samples()))[1]
        assert state.count == 5
        assert state.sum == pytest.approx(106.0)

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(2.0)
        assert h.bucket_counts() == [0, 1, 0]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_default_buckets_cover_kernel_latencies(self):
        h = Histogram("h")
        assert h.buckets == LATENCY_BUCKETS
        h.observe(30e-6)            # a typical simulated kernel
        assert sum(h.bucket_counts()) == 1


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")

    def test_collect_is_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert [m.name for m in reg.collect()] == ["a", "b"]

    def test_to_dict_is_json_serialisable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c_total", "c help").inc()
        reg.gauge("g", labelnames=("device",)).labels(device=0).set(7)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snapshot = json.loads(json.dumps(reg.to_dict()))
        assert snapshot["c_total"]["series"] == [{"labels": {}, "value": 1.0}]
        assert snapshot["g"]["series"][0]["labels"] == {"device": "0"}
        assert snapshot["h"]["bounds"] == [1.0, 2.0]
        assert snapshot["h"]["series"][0]["buckets"] == [0, 1, 0]
