"""Unit tests for frequency-based dictionary compression."""

import numpy as np

from repro.blu.compression import (
    build_dictionary,
    compression_stats,
    packed_width_bits,
)


class TestBuildDictionary:
    def test_roundtrip(self):
        values = ["b", "a", "c", "a", "a", "b"]
        dictionary, codes = build_dictionary(values)
        assert list(dictionary.decode(codes)) == values

    def test_most_frequent_value_gets_code_zero(self):
        values = ["rare", "hot", "hot", "hot", "warm", "warm"]
        dictionary, codes = build_dictionary(values)
        assert dictionary.values[0] == "hot"
        assert dictionary.values[1] == "warm"
        assert dictionary.values[2] == "rare"

    def test_frequency_ties_break_by_value(self):
        dictionary, _ = build_dictionary(["b", "a"])
        assert list(dictionary.values[:2]) == ["a", "b"]

    def test_deterministic(self):
        values = list("abcabcababab")
        d1, c1 = build_dictionary(values)
        d2, c2 = build_dictionary(values)
        assert np.array_equal(c1, c2)
        assert list(d1.values) == list(d2.values)

    def test_sort_rank_matches_collation(self):
        values = ["pear", "apple", "plum", "apple"]
        dictionary, codes = build_dictionary(values)
        ranks = dictionary.sort_rank[codes]
        order = np.argsort(ranks, kind="stable")
        decoded = dictionary.decode(codes)
        assert list(decoded[order]) == sorted(values)

    def test_single_value(self):
        dictionary, codes = build_dictionary(["only"] * 5)
        assert dictionary.cardinality == 1
        assert (codes == 0).all()


class TestPackedWidth:
    def test_width_bits(self):
        assert packed_width_bits(1) == 1
        assert packed_width_bits(2) == 1
        assert packed_width_bits(3) == 2
        assert packed_width_bits(256) == 8
        assert packed_width_bits(257) == 9

    def test_stats_ratio_improves_with_low_cardinality(self):
        tight = compression_stats(rows=10_000, cardinality=4, value_bytes=20)
        loose = compression_stats(rows=10_000, cardinality=5000,
                                  value_bytes=20)
        assert tight.ratio > loose.ratio
        assert tight.compressed_bytes < tight.logical_bytes

    def test_stats_accounting(self):
        stats = compression_stats(rows=8, cardinality=2, value_bytes=10)
        assert stats.packed_bits_per_value == 1
        assert stats.packed_bytes == 1
        assert stats.dictionary_bytes == 20
