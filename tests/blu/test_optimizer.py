"""Unit tests for cardinality estimation."""

import pytest

from repro.blu.optimizer import Optimizer
from repro.blu.plan import GroupByNode, JoinNode
from repro.blu.sql import parse_query


@pytest.fixture()
def optimizer(small_catalog):
    return Optimizer(small_catalog)


def annotate(optimizer, small_catalog, sql):
    plan = parse_query(sql, catalog=small_catalog)
    optimizer.annotate(plan)
    return plan


def node_of(plan, node_type):
    return [n for n in plan.walk() if isinstance(n, node_type)]


class TestScanEstimates:
    def test_unfiltered_scan_is_table_size(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog, "SELECT s_item FROM sales")
        assert plan.estimates.rows == small_catalog.table("sales").num_rows

    def test_equality_uses_distinct(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_item FROM sales WHERE s_store = 3")
        stats = small_catalog.column_stats("sales", "s_store")
        expected = small_catalog.table("sales").num_rows / stats.distinct
        assert plan.estimates.rows == pytest.approx(expected, rel=0.01)

    def test_range_interpolates(self, optimizer, small_catalog):
        low = annotate(optimizer, small_catalog,
                       "SELECT s_item FROM sales WHERE s_item < 100")
        high = annotate(optimizer, small_catalog,
                        "SELECT s_item FROM sales WHERE s_item < 1500")
        assert low.estimates.rows < high.estimates.rows

    def test_conjunction_multiplies(self, optimizer, small_catalog):
        one = annotate(optimizer, small_catalog,
                       "SELECT s_item FROM sales WHERE s_store = 3")
        both = annotate(optimizer, small_catalog,
                        "SELECT s_item FROM sales "
                        "WHERE s_store = 3 AND s_qty < 50")
        assert both.estimates.rows < one.estimates.rows

    def test_in_list_scales_with_length(self, optimizer, small_catalog):
        short = annotate(optimizer, small_catalog,
                         "SELECT s_item FROM sales WHERE s_store IN (1, 2)")
        long = annotate(optimizer, small_catalog,
                        "SELECT s_item FROM sales "
                        "WHERE s_store IN (1, 2, 3, 4, 5, 6)")
        assert long.estimates.rows == pytest.approx(
            3 * short.estimates.rows, rel=0.01)

    def test_floor_of_one_row(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_item FROM sales "
                        "WHERE s_ticket = 1 AND s_item = 1 AND s_store = 1")
        assert plan.estimates.rows >= 1.0


class TestJoinEstimates:
    def test_fk_join_keeps_probe_rows(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_item FROM sales "
                        "JOIN stores ON s_store = st_id")
        join = node_of(plan, JoinNode)[0]
        assert join.estimates.rows == pytest.approx(
            small_catalog.table("sales").num_rows, rel=0.01)

    def test_filtered_dimension_scales_join(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_item FROM sales "
                        "JOIN stores ON s_store = st_id "
                        "WHERE st_state = 'CA'")
        join = node_of(plan, JoinNode)[0]
        fraction = join.estimates.rows / small_catalog.table("sales").num_rows
        assert 0.05 < fraction < 0.5


class TestGroupEstimates:
    def test_groups_from_distinct(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_store, COUNT(*) AS c FROM sales "
                        "GROUP BY s_store")
        gb = node_of(plan, GroupByNode)[0]
        assert gb.estimates.groups == pytest.approx(12, rel=0.01)

    def test_groups_capped_by_rows(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_ticket, COUNT(*) AS c FROM sales "
                        "WHERE s_store = 1 GROUP BY s_ticket")
        gb = node_of(plan, GroupByNode)[0]
        assert gb.estimates.groups <= gb.child.estimates.rows

    def test_multikey_product_damped(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_store, s_channel, COUNT(*) AS c "
                        "FROM sales GROUP BY s_store, s_channel")
        gb = node_of(plan, GroupByNode)[0]
        assert gb.estimates.groups <= 12 * 4
        assert gb.estimates.groups >= 12

    def test_group_output_rows_equal_groups(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_store, COUNT(*) AS c FROM sales "
                        "GROUP BY s_store ORDER BY c")
        assert plan.estimates.rows == pytest.approx(12, rel=0.01)

    def test_limit_caps_rows(self, optimizer, small_catalog):
        plan = annotate(optimizer, small_catalog,
                        "SELECT s_item FROM sales LIMIT 10")
        assert plan.estimates.rows == 10


class TestExplain:
    def test_explain_renders(self, small_catalog):
        from repro.blu.engine import BluEngine

        engine = BluEngine(small_catalog)
        text = engine.explain_sql(
            "SELECT s_store, COUNT(*) AS c FROM sales "
            "JOIN stores ON s_store = st_id GROUP BY s_store")
        assert "GROUPBY" in text
        assert "HASHJOIN" in text
        assert "SCAN sales" in text
        assert "groups~" in text
