"""SQL NULL semantics: grouping, sorting, keyless aggregates."""

import pytest

from repro.blu import BluEngine, Catalog, Schema, Table
from repro.blu.datatypes import float64, int32, varchar
from tests.conftest import tables_equal


@pytest.fixture(scope="module")
def nullable_catalog() -> Catalog:
    schema = Schema.of(("k", int32()), ("tag", varchar(4)),
                       ("v", int32()), ("f", float64()))
    table = Table.from_pydict("t", schema, {
        "k": [1, None, 2, None, 1, 0, None, 2],
        "tag": ["a", "b", None, "a", None, "b", "b", "a"],
        "v": [10, 20, 30, 40, 50, 60, 70, 80],
        "f": [1.0, None, 3.0, 4.0, None, 6.0, 7.0, 8.0],
    })
    catalog = Catalog()
    catalog.register(table)
    return catalog


@pytest.fixture()
def engine(nullable_catalog):
    return BluEngine(nullable_catalog)


class TestNullGrouping:
    def test_nulls_form_their_own_group(self, engine):
        result = engine.execute_sql(
            "SELECT k, COUNT(*) AS c, SUM(v) AS s FROM t GROUP BY k")
        d = result.table.to_pydict()
        groups = {k: (c, s) for k, c, s in zip(d["k"], d["c"], d["s"])}
        assert groups[None] == (3, 20 + 40 + 70)
        assert groups[1] == (2, 60)
        assert groups[2] == (2, 110)
        assert groups[0] == (1, 60)      # 0 is NOT merged with NULL

    def test_null_group_distinct_from_zero_placeholder(self, engine):
        result = engine.execute_sql(
            "SELECT k, COUNT(*) AS c FROM t GROUP BY k")
        keys = result.table.to_pydict()["k"]
        assert None in keys and 0 in keys
        assert len(keys) == 4

    def test_string_null_group(self, engine):
        result = engine.execute_sql(
            "SELECT tag, COUNT(*) AS c FROM t GROUP BY tag")
        d = result.table.to_pydict()
        groups = dict(zip(d["tag"], d["c"]))
        assert groups[None] == 2
        assert groups["a"] == 3
        assert groups["b"] == 3

    def test_aggregates_skip_null_inputs(self, engine):
        result = engine.execute_sql(
            "SELECT k, COUNT(*) AS c, AVG(f) AS af FROM t GROUP BY k")
        d = result.table.to_pydict()
        by_key = {k: af for k, af in zip(d["k"], d["af"])}
        # k=1 rows have f = 1.0 and NULL -> AVG over the single non-null.
        assert by_key[1] == pytest.approx(1.0)

    def test_gpu_matches_cpu_with_null_keys(self, nullable_catalog):
        import dataclasses

        from repro.config import paper_testbed
        from repro.core import GpuAcceleratedEngine

        config = paper_testbed()
        thresholds = dataclasses.replace(config.thresholds, t1_min_rows=4,
                                         t2_min_groups=2, sort_min_rows=4)
        config = dataclasses.replace(config, thresholds=thresholds)
        gpu = GpuAcceleratedEngine(nullable_catalog, config=config)
        cpu = BluEngine(nullable_catalog)
        sql = "SELECT k, COUNT(*) AS c, SUM(v) AS s FROM t GROUP BY k"
        gpu_result = gpu.execute_sql(sql)
        assert gpu_result.profile.offloaded
        assert tables_equal(gpu_result.table, cpu.execute_sql(sql).table)


class TestNullSorting:
    def test_nulls_sort_last_ascending(self, engine):
        result = engine.execute_sql("SELECT k, v FROM t ORDER BY k, v")
        keys = result.table.to_pydict()["k"]
        assert keys[-3:] == [None, None, None]
        assert keys[:5] == [0, 1, 1, 2, 2]

    def test_nulls_sort_first_descending(self, engine):
        result = engine.execute_sql("SELECT k, v FROM t ORDER BY k DESC, v")
        keys = result.table.to_pydict()["k"]
        assert keys[:3] == [None, None, None]

    def test_float_nulls_sort_last(self, engine):
        result = engine.execute_sql("SELECT f FROM t ORDER BY f")
        values = result.table.to_pydict()["f"]
        assert values[-2:] == [None, None]
        non_null = [v for v in values if v is not None]
        assert non_null == sorted(non_null)


class TestKeylessAggregates:
    def test_count_over_empty_input_is_zero_one_row(self, engine):
        result = engine.execute_sql(
            "SELECT COUNT(*) AS c FROM t WHERE v > 1000")
        d = result.table.to_pydict()
        assert d["c"] == [0]

    def test_sum_over_empty_input(self, engine):
        result = engine.execute_sql(
            "SELECT SUM(v) AS s, COUNT(*) AS c FROM t WHERE v > 1000")
        d = result.table.to_pydict()
        assert d["c"] == [0]
        assert d["s"] == [0]            # engine convention: empty SUM is 0

    def test_normal_keyless_aggregate(self, engine):
        result = engine.execute_sql("SELECT SUM(v) AS s FROM t")
        assert result.table.to_pydict()["s"] == [360]
