"""Unit tests for the BLU engine end to end (CPU paths)."""

import pytest

from repro.errors import SchemaError, SqlError


class TestExecuteSql:
    def test_filter_group_order_limit(self, cpu_engine, sales_table):
        result = cpu_engine.execute_sql(
            "SELECT s_store, COUNT(*) AS cnt, SUM(s_qty) AS qty "
            "FROM sales WHERE s_item < 1000 "
            "GROUP BY s_store ORDER BY qty DESC LIMIT 3")
        table = result.table
        assert table.num_rows == 3
        qty = table.to_pydict()["qty"]
        assert qty == sorted(qty, reverse=True)

    def test_matches_numpy_reference(self, cpu_engine, sales_table):
        result = cpu_engine.execute_sql(
            "SELECT s_store, SUM(s_paid) AS paid FROM sales "
            "GROUP BY s_store")
        d = result.table.to_pydict()
        raw = sales_table.to_pydict()
        ref = {}
        for store, paid in zip(raw["s_store"], raw["s_paid"]):
            ref[store] = ref.get(store, 0.0) + paid
        assert len(d["s_store"]) == len(ref)
        for store, paid in zip(d["s_store"], d["paid"]):
            assert paid == pytest.approx(ref[store])

    def test_join_query(self, cpu_engine):
        result = cpu_engine.execute_sql(
            "SELECT st_state, COUNT(*) AS c FROM sales "
            "JOIN stores ON s_store = st_id "
            "WHERE st_state = 'CA' GROUP BY st_state")
        d = result.table.to_pydict()
        assert d["st_state"] == ["CA"]
        assert d["c"][0] > 0

    def test_profile_attached(self, cpu_engine):
        result = cpu_engine.execute_sql(
            "SELECT COUNT(*) AS c FROM sales", query_id="probe")
        assert result.profile.query_id == "probe"
        assert result.profile.cpu_core_seconds > 0
        assert not result.profile.offloaded
        assert result.elapsed_ms > 0

    def test_degree_changes_elapsed(self, cpu_engine):
        sql = ("SELECT s_item, SUM(s_qty) AS q FROM sales GROUP BY s_item")
        narrow = cpu_engine.execute_sql(sql, degree=4)
        wide = cpu_engine.execute_sql(sql, degree=48)
        assert narrow.profile.elapsed_serial(4) > \
            wide.profile.elapsed_serial(48)

    def test_unknown_table(self, cpu_engine):
        with pytest.raises(SchemaError):
            cpu_engine.execute_sql("SELECT x FROM ghost")

    def test_bad_sql(self, cpu_engine):
        with pytest.raises(SqlError):
            cpu_engine.execute_sql("SELEC x FROM sales")

    def test_query_ids_autogenerate(self, cpu_engine):
        r1 = cpu_engine.execute_sql("SELECT COUNT(*) AS c FROM sales")
        r2 = cpu_engine.execute_sql("SELECT COUNT(*) AS c FROM sales")
        assert r1.profile.query_id != r2.profile.query_id

    def test_gpu_flag_false_without_accelerator(self, cpu_engine):
        assert not cpu_engine.gpu_enabled


class TestFilterNodeExecution:
    def test_residual_filter_applies_after_join(self, cpu_engine):
        result = cpu_engine.execute_sql(
            "SELECT s_qty, st_size FROM sales "
            "JOIN stores ON s_store = st_id WHERE s_qty > st_size")
        d = result.table.to_pydict()
        assert all(q > s for q, s in zip(d["s_qty"], d["st_size"]))


class TestRankSql:
    def test_rank_over_grouped_output(self, cpu_engine):
        result = cpu_engine.execute_sql(
            "SELECT s_store, SUM(s_paid) AS rev, "
            "RANK() OVER (ORDER BY rev DESC) AS rnk "
            "FROM sales GROUP BY s_store ORDER BY rnk")
        d = result.table.to_pydict()
        assert d["rnk"][0] == 1
        assert d["rev"] == sorted(d["rev"], reverse=True)
