"""Unit tests for the SQL subset parser."""

import pytest

from repro.blu.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Like,
    Literal,
)
from repro.blu.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    RankNode,
    ScanNode,
    SortNode,
)
from repro.blu.sql import parse_query, tokenize
from repro.errors import SqlError


def find(plan, node_type):
    return [n for n in plan.walk() if isinstance(n, node_type)]


class TestTokenizer:
    def test_basic_stream(self):
        tokens = tokenize("SELECT a FROM t WHERE b = 1")
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "KEYWORD",
                         "IDENT", "CMP", "NUMBER", "EOF"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].kind == "STRING"

    def test_unknown_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT a ; b")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select A from T")
        assert tokens[0].text == "SELECT"
        assert tokens[1].text == "A"          # identifiers keep their case


class TestSelectShapes:
    def test_plain_select(self):
        plan = parse_query("SELECT a, b FROM t")
        assert isinstance(plan, ScanNode)

    def test_aggregates_build_groupby(self):
        plan = parse_query(
            "SELECT g, SUM(x) AS sx, COUNT(*) AS c FROM t GROUP BY g")
        groupbys = find(plan, GroupByNode)
        assert len(groupbys) == 1
        assert groupbys[0].keys == ["g"]
        assert [a.alias for a in groupbys[0].aggs] == ["sx", "c"]

    def test_default_agg_aliases(self):
        plan = parse_query("SELECT SUM(x), COUNT(*), AVG(y) FROM t")
        gb = find(plan, GroupByNode)[0]
        assert [a.alias for a in gb.aggs] == ["sum_x", "count_star", "avg_y"]

    def test_order_limit(self):
        plan = parse_query("SELECT a FROM t ORDER BY a DESC, b LIMIT 7")
        assert isinstance(plan, LimitNode)
        assert plan.limit == 7
        sort = plan.child
        assert isinstance(sort, SortNode)
        assert [(k.column, k.ascending) for k in sort.keys] == \
            [("a", False), ("b", True)]

    def test_joins_chain_left_deep(self):
        plan = parse_query(
            "SELECT a FROM f JOIN d1 ON k1 = r1 JOIN d2 ON k2 = r2")
        joins = find(plan, JoinNode)
        assert len(joins) == 2
        scans = find(plan, ScanNode)
        assert {s.table_name for s in scans} == {"f", "d1", "d2"}

    def test_inner_join_keyword(self):
        plan = parse_query("SELECT a FROM f INNER JOIN d ON x = y")
        assert len(find(plan, JoinNode)) == 1

    def test_rank_over(self):
        plan = parse_query(
            "SELECT g, SUM(x) AS s, "
            "RANK() OVER (PARTITION BY g ORDER BY s DESC) AS r "
            "FROM t GROUP BY g")
        ranks = find(plan, RankNode)
        assert len(ranks) == 1
        assert ranks[0].partition_keys == ["g"]
        assert ranks[0].order_key == "s"
        assert not ranks[0].ascending
        assert ranks[0].alias == "r"

    def test_qualified_names_drop_prefix(self):
        plan = parse_query("SELECT t.a FROM t WHERE t.a > 1")
        filters = find(plan, FilterNode)
        assert isinstance(filters[0].predicate, Comparison)
        assert filters[0].predicate.left == ColumnRef("a")

    def test_computed_projection(self):
        plan = parse_query("SELECT a + b AS s FROM t")
        projects = find(plan, ProjectNode)
        assert len(projects) == 1
        assert projects[0].items[0][0] == "s"

    def test_having_becomes_filter_above_groupby(self):
        plan = parse_query(
            "SELECT g, SUM(x) AS s FROM t GROUP BY g HAVING s > 10")
        filters = find(plan, FilterNode)
        assert len(filters) == 1
        assert isinstance(filters[0].child, GroupByNode)


class TestPredicates:
    def test_where_combinators(self):
        plan = parse_query(
            "SELECT a FROM t WHERE a = 1 AND (b < 2 OR c >= 3) AND NOT d <> 4")
        predicate = find(plan, FilterNode)[0].predicate
        assert isinstance(predicate, And)

    def test_between_in_like(self):
        plan = parse_query(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 "
            "AND b IN (1, 2, 3) AND c LIKE 'x%'")
        terms = find(plan, FilterNode)[0].predicate.terms
        assert isinstance(terms[0], Between)
        assert isinstance(terms[1], InList)
        assert terms[1].values == (1, 2, 3)
        assert isinstance(terms[2], Like)

    def test_is_null(self):
        plan = parse_query("SELECT a FROM t WHERE b IS NOT NULL")
        predicate = find(plan, FilterNode)[0].predicate
        assert predicate.negated

    def test_string_literals(self):
        plan = parse_query("SELECT a FROM t WHERE s = 'it''s'")
        predicate = find(plan, FilterNode)[0].predicate
        assert predicate.right == Literal("it's")

    def test_arithmetic_in_predicate(self):
        plan = parse_query("SELECT a FROM t WHERE a * 2 + 1 > 10")
        assert find(plan, FilterNode)


class TestPushdown:
    def test_pushdown_with_catalog(self, small_catalog):
        plan = parse_query(
            "SELECT s_store, COUNT(*) AS c FROM sales "
            "JOIN stores ON s_store = st_id "
            "WHERE s_qty > 50 AND st_state = 'CA' GROUP BY s_store",
            catalog=small_catalog)
        scans = {s.table_name: s for s in find(plan, ScanNode)}
        assert scans["sales"].predicate is not None
        assert scans["stores"].predicate is not None
        assert not find(plan, FilterNode)

    def test_cross_table_conjunct_stays_residual(self, small_catalog):
        plan = parse_query(
            "SELECT s_store FROM sales JOIN stores ON s_store = st_id "
            "WHERE s_qty > st_size",
            catalog=small_catalog)
        assert len(find(plan, FilterNode)) == 1

    def test_no_catalog_no_pushdown(self):
        plan = parse_query("SELECT a FROM t WHERE a = 1")
        assert find(plan, FilterNode)


class TestErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT FROM t",
        "SELECT a",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP",
        "SELECT a FROM t LIMIT x",
        "SELECT SUM( FROM t",
        "SELECT a FROM t JOIN u ON a",
        "SELECT a FROM t trailing garbage",
    ])
    def test_rejects(self, sql):
        with pytest.raises(SqlError):
            parse_query(sql)
