"""Unit tests for plan nodes, walking, and EXPLAIN rendering."""

import pytest

from repro.blu.expressions import AggFunc, AggSpec, ColumnRef
from repro.blu.plan import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    RankNode,
    ScanNode,
    SortKey,
    SortNode,
    explain,
)
from repro.errors import PlanError


def small_tree() -> PlanNode:
    scan = ScanNode("fact")
    dim = ScanNode("dim")
    join = JoinNode(scan, dim, "fk", "pk")
    group = GroupByNode(join, ["g"],
                        [AggSpec(AggFunc.SUM, ColumnRef("v"), "s")])
    sort = SortNode(group, [SortKey("s", ascending=False)])
    return LimitNode(sort, 10)


class TestValidation:
    def test_groupby_requires_keys_or_aggs(self):
        with pytest.raises(PlanError):
            GroupByNode(ScanNode("t"), [], [])

    def test_sort_requires_keys(self):
        with pytest.raises(PlanError):
            SortNode(ScanNode("t"), [])

    def test_project_requires_items(self):
        with pytest.raises(PlanError):
            ProjectNode(ScanNode("t"), [])

    def test_limit_rejects_negative(self):
        with pytest.raises(PlanError):
            LimitNode(ScanNode("t"), -1)


class TestWalk:
    def test_bottom_up_order(self):
        plan = small_tree()
        kinds = [type(n).__name__ for n in plan.walk()]
        assert kinds == ["ScanNode", "ScanNode", "JoinNode", "GroupByNode",
                         "SortNode", "LimitNode"]

    def test_children(self):
        plan = small_tree()
        assert len(plan.children) == 1
        join = [n for n in plan.walk() if isinstance(n, JoinNode)][0]
        assert len(join.children) == 2

    def test_scan_is_leaf(self):
        assert ScanNode("t").children == ()


class TestDescribe:
    def test_descriptions(self):
        plan = small_tree()
        described = {type(n).__name__: n.describe() for n in plan.walk()}
        assert described["ScanNode"].startswith("SCAN")
        assert "fk = pk" in described["JoinNode"]
        assert "keys=['g']" in described["GroupByNode"]
        assert "s DESC" in described["SortNode"]
        assert described["LimitNode"] == "LIMIT 10"

    def test_filter_and_rank_describe(self):
        from repro.blu.expressions import CmpOp, Comparison, Literal

        f = FilterNode(ScanNode("t"),
                       Comparison(CmpOp.GT, ColumnRef("x"), Literal(1)))
        assert f.describe() == "FILTER"
        r = RankNode(ScanNode("t"), ["p"], "o", True, "rnk")
        assert "PARTITION BY ['p']" in r.describe()

    def test_explain_indents_and_shows_estimates(self):
        plan = small_tree()
        plan.estimates.rows = 10
        inner = [n for n in plan.walk() if isinstance(n, GroupByNode)][0]
        inner.estimates.rows = 500
        inner.estimates.groups = 500
        text = explain(plan)
        lines = text.splitlines()
        assert lines[0].startswith("LIMIT")
        # Scans sit four levels deep: LIMIT > SORT > GROUPBY > JOIN > SCAN.
        assert any(line.startswith("        SCAN") for line in lines)
        assert "groups~500" in text
