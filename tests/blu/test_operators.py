"""Unit tests for the CPU physical operators, cross-checked against
brute-force python reference implementations."""

import collections

import numpy as np
import pytest

from repro.blu.datatypes import float64, int32, int64, varchar
from repro.blu.expressions import (
    AggFunc,
    AggSpec,
    CmpOp,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.blu.operators import (
    execute_groupby_cpu,
    execute_join,
    execute_limit,
    execute_project,
    execute_rank,
    execute_scan,
    execute_sort_cpu,
    group_encode,
)
from repro.blu.plan import RankNode, ScanNode, SortKey
from repro.blu.table import Schema, Table
from repro.config import CostModel
from repro.timing import CostLedger


@pytest.fixture()
def cost():
    return CostModel()


@pytest.fixture()
def ledger():
    return CostLedger()


@pytest.fixture()
def fact() -> Table:
    rng = np.random.default_rng(3)
    n = 5000
    schema = Schema.of(("k", int32()), ("g", int32()), ("v", int64()),
                       ("f", float64()), ("tag", varchar(4)))
    return Table.from_pydict("fact", schema, {
        "k": rng.integers(1, 40, n).tolist(),
        "g": rng.integers(1, 9, n).tolist(),
        "v": rng.integers(-50, 50, n).tolist(),
        "f": np.round(rng.random(n) * 10, 3).tolist(),
        "tag": rng.choice(np.array(list("abcd"), dtype=object), n).tolist(),
    })


@pytest.fixture()
def dim() -> Table:
    schema = Schema.of(("d_id", int32()), ("d_name", varchar(8)))
    return Table.from_pydict("dim", schema, {
        "d_id": list(range(1, 41)),
        "d_name": [f"name{i:02d}" for i in range(1, 41)],
    })


class TestScan:
    def test_no_predicate_is_identity(self, fact, cost, ledger):
        out = execute_scan(fact, None, cost, ledger)
        assert out is fact
        assert ledger.events[0].op == "SCAN"

    def test_predicate_filters(self, fact, cost, ledger):
        pred = Comparison(CmpOp.GT, ColumnRef("v"), Literal(0))
        out = execute_scan(fact, pred, cost, ledger)
        assert all(v > 0 for v in out.to_pydict()["v"])
        expected = sum(1 for v in fact.to_pydict()["v"] if v > 0)
        assert out.num_rows == expected

    def test_cost_scales_with_complexity(self, fact, cost):
        simple, complex_ = CostLedger(), CostLedger()
        p1 = Comparison(CmpOp.GT, ColumnRef("v"), Literal(0))
        from repro.blu.expressions import And
        p3 = And((p1, Comparison(CmpOp.LT, ColumnRef("k"), Literal(30)),
                  Comparison(CmpOp.GT, ColumnRef("f"), Literal(1.0))))
        execute_scan(fact, p1, cost, simple)
        execute_scan(fact, p3, cost, complex_)
        assert complex_.events[0].cpu_seconds > simple.events[0].cpu_seconds


class TestJoin:
    def test_fk_join_matches_reference(self, fact, dim, cost, ledger):
        out = execute_join(fact, dim, "k", "d_id", cost, ledger)
        assert out.num_rows == fact.num_rows     # every k in 1..40 matches
        d = out.to_pydict()
        for k, name in zip(d["k"], d["d_name"]):
            assert name == f"name{k:02d}"

    def test_partial_match(self, fact, cost, ledger):
        schema = Schema.of(("d_id", int32()), ("w", int32()))
        small_dim = Table.from_pydict("d2", schema, {
            "d_id": [1, 2, 3], "w": [10, 20, 30]})
        out = execute_join(fact, small_dim, "k", "d_id", cost, ledger)
        expected = sum(1 for k in fact.to_pydict()["k"] if k <= 3)
        assert out.num_rows == expected

    def test_empty_build_side(self, fact, cost, ledger):
        schema = Schema.of(("d_id", int32()))
        empty = Table.from_pydict("d3", schema, {"d_id": []})
        out = execute_join(fact, empty, "k", "d_id", cost, ledger)
        assert out.num_rows == 0

    def test_string_key_join(self, cost, ledger):
        left = Table.from_pydict("l", Schema.of(("tag", varchar(4)),
                                                ("x", int32())),
                                 {"tag": ["a", "b", "c"], "x": [1, 2, 3]})
        right = Table.from_pydict("r", Schema.of(("rtag", varchar(4)),
                                                 ("y", int32())),
                                  {"rtag": ["b", "c", "d"], "y": [20, 30, 40]})
        out = execute_join(left, right, "tag", "rtag", cost, ledger)
        d = out.to_pydict()
        assert d["tag"] == ["b", "c"]
        assert d["y"] == [20, 30]

    def test_many_to_many_expansion(self, cost, ledger):
        left = Table.from_pydict("l", Schema.of(("k", int32())),
                                 {"k": [1, 2]})
        right = Table.from_pydict("r", Schema.of(("k2", int32()),
                                                 ("v", int32())),
                                  {"k2": [1, 1, 2], "v": [10, 11, 20]})
        out = execute_join(left, right, "k", "k2", cost, ledger)
        assert sorted(out.to_pydict()["v"]) == [10, 11, 20]


class TestGroupEncode:
    def test_single_key(self):
        keys = [np.array([5, 3, 5, 7, 3], dtype=np.int64)]
        index, first, n = group_encode(keys)
        assert n == 3
        assert list(index) == [0, 1, 0, 2, 1]      # appearance order
        assert list(first) == [0, 1, 3]

    def test_multi_key(self):
        a = np.array([1, 1, 2, 2, 1], dtype=np.int64)
        b = np.array([1, 2, 1, 1, 1], dtype=np.int64)
        index, first, n = group_encode([a, b])
        assert n == 3
        assert list(index) == [0, 1, 2, 2, 0]

    def test_empty(self):
        index, first, n = group_encode([np.array([], dtype=np.int64)])
        assert n == 0 and len(index) == 0


class TestGroupByCpu:
    def test_matches_bruteforce(self, fact, cost, ledger):
        aggs = [
            AggSpec(AggFunc.COUNT, None, "cnt"),
            AggSpec(AggFunc.SUM, ColumnRef("v"), "sv"),
            AggSpec(AggFunc.MIN, ColumnRef("v"), "mn"),
            AggSpec(AggFunc.MAX, ColumnRef("f"), "mx"),
            AggSpec(AggFunc.AVG, ColumnRef("f"), "av"),
        ]
        out = execute_groupby_cpu(fact, ["g"], aggs, cost, ledger)
        data = fact.to_pydict()
        ref = collections.defaultdict(lambda: {"cnt": 0, "sv": 0,
                                               "mn": 10**9, "mx": -1e18,
                                               "fsum": 0.0})
        for g, v, f in zip(data["g"], data["v"], data["f"]):
            r = ref[g]
            r["cnt"] += 1
            r["sv"] += v
            r["mn"] = min(r["mn"], v)
            r["mx"] = max(r["mx"], f)
            r["fsum"] += f
        result = out.to_pydict()
        assert out.num_rows == len(ref)
        for i, g in enumerate(result["g"]):
            r = ref[g]
            assert result["cnt"][i] == r["cnt"]
            assert result["sv"][i] == r["sv"]
            assert result["mn"][i] == r["mn"]
            assert result["mx"][i] == pytest.approx(r["mx"])
            assert result["av"][i] == pytest.approx(r["fsum"] / r["cnt"])

    def test_string_min_max(self, fact, cost, ledger):
        aggs = [AggSpec(AggFunc.MIN, ColumnRef("tag"), "lo"),
                AggSpec(AggFunc.MAX, ColumnRef("tag"), "hi")]
        out = execute_groupby_cpu(fact, ["g"], aggs, cost, ledger)
        data = fact.to_pydict()
        ref_lo, ref_hi = {}, {}
        for g, tag in zip(data["g"], data["tag"]):
            ref_lo[g] = min(ref_lo.get(g, "zzz"), tag)
            ref_hi[g] = max(ref_hi.get(g, ""), tag)
        result = out.to_pydict()
        for i, g in enumerate(result["g"]):
            assert result["lo"][i] == ref_lo[g]
            assert result["hi"][i] == ref_hi[g]

    def test_multi_key_grouping(self, fact, cost, ledger):
        aggs = [AggSpec(AggFunc.COUNT, None, "c")]
        out = execute_groupby_cpu(fact, ["g", "tag"], aggs, cost, ledger)
        data = fact.to_pydict()
        ref = collections.Counter(zip(data["g"], data["tag"]))
        assert out.num_rows == len(ref)
        result = out.to_pydict()
        for g, tag, c in zip(result["g"], result["tag"], result["c"]):
            assert ref[(g, tag)] == c

    def test_global_aggregate_no_keys(self, fact, cost, ledger):
        aggs = [AggSpec(AggFunc.SUM, ColumnRef("v"), "total")]
        out = execute_groupby_cpu(fact, [], aggs, cost, ledger)
        assert out.num_rows == 1
        assert out.to_pydict()["total"][0] == sum(fact.to_pydict()["v"])

    def test_chain_cost_events_match_figure1(self, fact, cost):
        ledger = CostLedger()
        aggs = [AggSpec(AggFunc.SUM, ColumnRef("v"), "s"),
                AggSpec(AggFunc.COUNT, None, "c")]
        execute_groupby_cpu(fact, ["g", "k"], aggs, cost, ledger)
        ops = [e.op for e in ledger.events]
        assert ops == ["LCOG", "LCOV", "CCAT", "HASH", "LGHT", "AGGD",
                       "SUM", "MERGE"]


class TestSort:
    def test_single_key_asc(self, fact, cost, ledger):
        out = execute_sort_cpu(fact, [SortKey("v")], cost, ledger)
        values = out.to_pydict()["v"]
        assert values == sorted(values)

    def test_desc(self, fact, cost, ledger):
        out = execute_sort_cpu(fact, [SortKey("v", ascending=False)],
                               cost, ledger)
        values = out.to_pydict()["v"]
        assert values == sorted(values, reverse=True)

    def test_multi_key_with_strings(self, fact, cost, ledger):
        out = execute_sort_cpu(
            fact, [SortKey("tag"), SortKey("v", ascending=False)],
            cost, ledger)
        d = out.to_pydict()
        pairs = list(zip(d["tag"], [-v for v in d["v"]]))
        assert pairs == sorted(pairs)

    def test_stability(self, cost, ledger):
        schema = Schema.of(("k", int32()), ("pos", int32()))
        t = Table.from_pydict("t", schema, {
            "k": [1, 1, 1, 0, 0], "pos": [0, 1, 2, 3, 4]})
        out = execute_sort_cpu(t, [SortKey("k")], cost, ledger)
        assert out.to_pydict()["pos"] == [3, 4, 0, 1, 2]

    def test_float_sort(self, fact, cost, ledger):
        out = execute_sort_cpu(fact, [SortKey("f", ascending=False)],
                               cost, ledger)
        values = out.to_pydict()["f"]
        assert values == sorted(values, reverse=True)


class TestRank:
    def test_rank_semantics_with_ties(self, cost, ledger):
        schema = Schema.of(("p", int32()), ("v", int32()))
        t = Table.from_pydict("t", schema, {
            "p": [1, 1, 1, 1, 2, 2],
            "v": [10, 10, 5, 1, 7, 7],
        })
        node = RankNode(ScanNode("t"), ["p"], "v", ascending=False,
                        alias="rnk")
        out = execute_rank(t, node, cost, ledger)
        d = out.to_pydict()
        got = {(p, v): r for p, v, r in zip(d["p"], d["v"], d["rnk"])}
        assert got[(1, 10)] == 1       # two rows tie at rank 1
        assert got[(1, 5)] == 3        # rank skips after ties
        assert got[(1, 1)] == 4
        assert got[(2, 7)] == 1

    def test_rank_no_partition(self, cost, ledger):
        schema = Schema.of(("v", int32()),)
        t = Table.from_pydict("t", schema, {"v": [3, 1, 2]})
        node = RankNode(ScanNode("t"), [], "v", ascending=True, alias="r")
        out = execute_rank(t, node, cost, ledger)
        d = out.to_pydict()
        assert {v: r for v, r in zip(d["v"], d["r"])} == {1: 1, 2: 2, 3: 3}


class TestProjectLimit:
    def test_project_computed(self, fact, cost, ledger):
        from repro.blu.expressions import Arithmetic, ArithOp
        items = [("v2", Arithmetic(ArithOp.MUL, ColumnRef("v"), Literal(2))),
                 ("g", ColumnRef("g"))]
        out = execute_project(fact, items, cost, ledger)
        d = out.to_pydict()
        assert d["v2"][:5] == [2 * v for v in fact.to_pydict()["v"][:5]]

    def test_limit(self, fact, cost, ledger):
        assert execute_limit(fact, 10, cost, ledger).num_rows == 10
        assert execute_limit(fact, 10**9, cost, ledger).num_rows == \
            fact.num_rows


class TestDistinctAggregates:
    def test_count_distinct_matches_bruteforce(self, fact, cost, ledger):
        aggs = [AggSpec(AggFunc.COUNT, ColumnRef("k"), "cd", distinct=True),
                AggSpec(AggFunc.COUNT, ColumnRef("k"), "c")]
        out = execute_groupby_cpu(fact, ["g"], aggs, cost, ledger)
        data = fact.to_pydict()
        ref = collections.defaultdict(set)
        plain = collections.Counter()
        for g, k in zip(data["g"], data["k"]):
            ref[g].add(k)
            plain[g] += 1
        result = out.to_pydict()
        for g, cd, c in zip(result["g"], result["cd"], result["c"]):
            assert cd == len(ref[g])
            assert c == plain[g]

    def test_sum_distinct(self, fact, cost, ledger):
        aggs = [AggSpec(AggFunc.SUM, ColumnRef("k"), "sd", distinct=True)]
        out = execute_groupby_cpu(fact, ["g"], aggs, cost, ledger)
        data = fact.to_pydict()
        ref = collections.defaultdict(set)
        for g, k in zip(data["g"], data["k"]):
            ref[g].add(k)
        result = out.to_pydict()
        for g, sd in zip(result["g"], result["sd"]):
            assert sd == sum(ref[g])

    def test_distinct_is_noop_for_min_max(self, fact, cost, ledger):
        aggs = [AggSpec(AggFunc.MIN, ColumnRef("v"), "m", distinct=True),
                AggSpec(AggFunc.MIN, ColumnRef("v"), "m2")]
        out = execute_groupby_cpu(fact, ["g"], aggs, cost, ledger)
        result = out.to_pydict()
        assert result["m"] == result["m2"]

    def test_sql_count_distinct(self, cost):
        from repro.blu import BluEngine, Catalog

        catalog = Catalog()
        schema = Schema.of(("g", int32()), ("x", int32()))
        catalog.register(Table.from_pydict("d", schema, {
            "g": [1, 1, 1, 2, 2], "x": [5, 5, 7, 9, 9]}))
        engine = BluEngine(catalog)
        result = engine.execute_sql(
            "SELECT g, COUNT(DISTINCT x) AS cd FROM d GROUP BY g")
        d = result.table.to_pydict()
        assert dict(zip(d["g"], d["cd"])) == {1: 2, 2: 1}

    def test_count_over_string_column(self, fact, cost, ledger):
        aggs = [AggSpec(AggFunc.COUNT, ColumnRef("tag"), "c"),
                AggSpec(AggFunc.COUNT, ColumnRef("tag"), "cd",
                        distinct=True)]
        out = execute_groupby_cpu(fact, ["g"], aggs, cost, ledger)
        data = fact.to_pydict()
        totals = collections.Counter(data["g"])
        distincts = collections.defaultdict(set)
        for g, tag in zip(data["g"], data["tag"]):
            distincts[g].add(tag)
        result = out.to_pydict()
        for g, c, cd in zip(result["g"], result["c"], result["cd"]):
            assert c == totals[g]
            assert cd == len(distincts[g])
