"""Property/fuzz tests for the SQL front end against the engine.

Generates structurally valid queries over the test fixture schema and
checks that (a) they parse and execute without crashing, (b) the GPU and
CPU engines agree, and (c) SQL-level equivalences hold (predicate order,
redundant parentheses, HAVING vs post-filtering).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.blu.engine import BluEngine
from repro.blu.sql import parse_query
from repro.errors import SqlError


NUMERIC_COLUMNS = ("s_item", "s_store", "s_qty", "s_ticket")
AGGS = ("SUM(s_qty)", "COUNT(*)", "MIN(s_item)", "MAX(s_paid)",
        "AVG(s_paid)")
GROUP_KEYS = ("s_store", "s_channel", "s_item")

predicates = st.sampled_from([
    "s_qty > 50",
    "s_item BETWEEN 100 AND 900",
    "s_store IN (1, 3, 5)",
    "s_channel = 'web'",
    "s_channel LIKE 'c%'",
    "NOT s_store = 7",
    "s_qty < 20 OR s_qty > 80",
])


@st.composite
def select_statements(draw):
    keys = draw(st.lists(st.sampled_from(GROUP_KEYS), min_size=1,
                         max_size=2, unique=True))
    aggs = draw(st.lists(st.sampled_from(AGGS), min_size=1, max_size=3,
                         unique=True))
    agg_items = [f"{a} AS a{i}" for i, a in enumerate(aggs)]
    select = ", ".join(list(keys) + agg_items)
    sql = f"SELECT {select} FROM sales"
    terms = draw(st.lists(predicates, max_size=2, unique=True))
    if terms:
        sql += " WHERE " + " AND ".join(f"({t})" for t in terms)
    sql += " GROUP BY " + ", ".join(keys)
    if draw(st.booleans()):
        sql += " ORDER BY a0 DESC"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(min_value=1, max_value=50))}"
    return sql


class TestGeneratedQueries:
    @given(sql=select_statements())
    @settings(max_examples=40, deadline=None)
    def test_parse_and_execute(self, sql, small_catalog):
        engine = BluEngine(small_catalog)
        result = engine.execute_sql(sql)
        assert result.table.num_rows >= 0
        assert result.profile.cpu_core_seconds >= 0

    @given(sql=select_statements())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_gpu_cpu_agree(self, sql, small_catalog, gpu_engine):
        from tests.conftest import tables_equal

        cpu = BluEngine(small_catalog)
        assert tables_equal(gpu_engine.execute_sql(sql).table,
                            cpu.execute_sql(sql).table)

    @given(a=predicates, b=predicates)
    @settings(max_examples=25, deadline=None)
    def test_conjunct_order_irrelevant(self, a, b, small_catalog):
        # Parenthesise: a bare OR inside a term would otherwise rebind
        # under SQL's AND-over-OR precedence.
        engine = BluEngine(small_catalog)
        sql1 = f"SELECT COUNT(*) AS c FROM sales WHERE ({a}) AND ({b})"
        sql2 = f"SELECT COUNT(*) AS c FROM sales WHERE ({b}) AND ({a})"
        r1 = engine.execute_sql(sql1).table.to_pydict()
        r2 = engine.execute_sql(sql2).table.to_pydict()
        assert r1 == r2

    @given(term=predicates)
    @settings(max_examples=20, deadline=None)
    def test_parentheses_are_transparent(self, term, small_catalog):
        engine = BluEngine(small_catalog)
        plain = engine.execute_sql(
            f"SELECT COUNT(*) AS c FROM sales WHERE {term}")
        wrapped = engine.execute_sql(
            f"SELECT COUNT(*) AS c FROM sales WHERE (({term}))")
        assert plain.table.to_pydict() == wrapped.table.to_pydict()

    def test_having_equals_manual_filter(self, small_catalog):
        engine = BluEngine(small_catalog)
        with_having = engine.execute_sql(
            "SELECT s_store, COUNT(*) AS c FROM sales "
            "GROUP BY s_store HAVING c > 4000 ORDER BY s_store")
        manual = engine.execute_sql(
            "SELECT s_store, COUNT(*) AS c FROM sales "
            "GROUP BY s_store ORDER BY s_store")
        kept = [i for i, c in enumerate(manual.table.to_pydict()["c"])
                if c > 4000]
        assert with_having.table.to_pydict()["s_store"] == \
            [manual.table.to_pydict()["s_store"][i] for i in kept]


class TestMalformedInputs:
    @given(junk=st.text(min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_junk_never_crashes_with_internal_errors(self, junk):
        """Arbitrary text either parses or raises SqlError — nothing else."""
        try:
            parse_query("SELECT " + junk)
        except SqlError:
            pass
