"""Unit tests for the column type system."""

import numpy as np
import pytest

from repro.blu.datatypes import (
    AtomicSupport,
    TypeKind,
    char,
    common_numeric_type,
    date,
    decimal,
    float64,
    int32,
    int64,
    int128,
    varchar,
)
from repro.errors import TypeMismatchError


class TestWidths:
    def test_int_widths(self):
        assert int32().bytes == 4
        assert int64().bytes == 8
        assert int128().bytes == 16

    def test_decimal_width_follows_precision(self):
        assert decimal(7, 2).bits == 64
        assert decimal(18, 2).bits == 64
        assert decimal(19, 2).bits == 128
        assert decimal(31, 4).bits == 128

    def test_char_width_is_padded_length(self):
        assert char(10).bits == 80
        assert varchar(4).bits == 32

    def test_date_is_int32_days(self):
        assert date().numpy_dtype == np.dtype(np.int32)


class TestAtomicSupport:
    """Section 4.4's three update regimes."""

    def test_small_numerics_have_native_atomics(self):
        for t in (int32(), int64(), float64(), date(), decimal(7, 2)):
            assert t.atomic_support is AtomicSupport.NATIVE

    def test_128bit_numerics_need_cas_loops(self):
        assert int128().atomic_support is AtomicSupport.CAS_LOOP
        assert decimal(31, 2).atomic_support is AtomicSupport.CAS_LOOP

    def test_strings_need_locks(self):
        assert char(20).atomic_support is AtomicSupport.LOCK_ONLY
        assert varchar(2).atomic_support is AtomicSupport.LOCK_ONLY


class TestNumpyMapping:
    def test_strings_store_codes(self):
        assert varchar(30).numpy_dtype == np.dtype(np.int32)

    def test_int128_stored_as_int64(self):
        # Physical storage narrows at our scale; logical width is kept.
        assert int128().numpy_dtype == np.dtype(np.int64)
        assert int128().bits == 128

    def test_float_is_double(self):
        assert float64().numpy_dtype == np.dtype(np.float64)


class TestTypeAlgebra:
    def test_sum_widens_integers(self):
        assert int32().result_type_for_sum() == int64()
        assert int64().result_type_for_sum() == int128()

    def test_sum_of_decimal_goes_wide(self):
        result = decimal(7, 2).result_type_for_sum()
        assert result.bits == 128
        assert result.scale == 2

    def test_sum_of_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            varchar(5).result_type_for_sum()

    def test_common_type_float_wins(self):
        assert common_numeric_type(int32(), float64()) == float64()

    def test_common_type_decimal_beats_int(self):
        combined = common_numeric_type(decimal(7, 2), int64())
        assert combined.kind is TypeKind.DECIMAL

    def test_common_type_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            common_numeric_type(varchar(3), int32())

    def test_comparable_validation(self):
        with pytest.raises(TypeMismatchError):
            varchar(3).validate_comparable(int32())
        int32().validate_comparable(int64())  # no raise


def test_str_rendering():
    assert str(decimal(7, 2)) == "DECIMAL(7,2)"
    assert str(varchar(8)) == "VARCHAR(8)"
    assert str(char(8)) == "CHAR(8)"
    assert str(int64()) == "INT64"
