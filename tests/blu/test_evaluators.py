"""Unit tests for the Figure-1 / Figure-2 evaluator chains."""

import pytest

from repro.blu.evaluators import (
    build_cpu_groupby_chain,
    build_gpu_host_chain,
)
from repro.config import CostModel


@pytest.fixture()
def cost():
    return CostModel()


class TestCpuChain:
    def test_stage_names_match_figure1(self, cost):
        chain = build_cpu_groupby_chain(rows=1000, num_keys=2, num_aggs=3,
                                        groups=10, cost=cost)
        assert chain.stage_names() == [
            "LCOG", "LCOV", "CCAT", "HASH", "LGHT", "AGGD", "SUM", "CNT",
            "MERGE",
        ]

    def test_single_key_skips_ccat(self, cost):
        chain = build_cpu_groupby_chain(rows=1000, num_keys=1, num_aggs=1,
                                        groups=10, cost=cost)
        assert "CCAT" not in chain.stage_names()

    def test_many_aggs_get_numbered_evaluators(self, cost):
        chain = build_cpu_groupby_chain(rows=100, num_keys=1, num_aggs=5,
                                        groups=10, cost=cost)
        assert "AGG3" in chain.stage_names()
        assert "AGG4" in chain.stage_names()

    def test_cost_monotone_in_rows(self, cost):
        small = build_cpu_groupby_chain(1000, 1, 2, 10, cost)
        large = build_cpu_groupby_chain(100_000, 1, 2, 10, cost)
        assert large.total_cpu_seconds > small.total_cpu_seconds

    def test_cost_monotone_in_aggs(self, cost):
        few = build_cpu_groupby_chain(10_000, 1, 1, 10, cost)
        many = build_cpu_groupby_chain(10_000, 1, 8, 10, cost)
        assert many.total_cpu_seconds > few.total_cpu_seconds

    def test_merge_scales_with_groups(self, cost):
        few = build_cpu_groupby_chain(10_000, 1, 1, 10, cost)
        many = build_cpu_groupby_chain(10_000, 1, 1, 10_000, cost)
        merge_few = few.evaluators[-1].cpu_seconds
        merge_many = many.evaluators[-1].cpu_seconds
        assert merge_many > 100 * merge_few


class TestGpuHostChain:
    def test_stage_names_match_figure2(self, cost):
        chain = build_gpu_host_chain(rows=1000, num_keys=2, num_aggs=3,
                                     staged_bytes=16_000, cost=cost)
        assert chain.stage_names() == [
            "LCOG", "LCOV", "CCAT", "HASH", "KMV", "MEMCPY",
        ]

    def test_no_lght_or_agg_stages(self, cost):
        chain = build_gpu_host_chain(rows=1000, num_keys=1, num_aggs=6,
                                     staged_bytes=1000, cost=cost)
        names = chain.stage_names()
        assert "LGHT" not in names
        assert not any(n.startswith("AGG") or n in ("SUM", "CNT")
                       for n in names)

    def test_memcpy_scales_with_staged_bytes(self, cost):
        thin = build_gpu_host_chain(1000, 1, 1, 8_000, cost)
        wide = build_gpu_host_chain(1000, 1, 1, 8_000_000, cost)
        assert wide.evaluators[-1].cpu_seconds > \
            100 * thin.evaluators[-1].cpu_seconds

    def test_host_chain_cheaper_than_cpu_chain(self, cost):
        """The whole point of Figure 2: the host does less."""
        cpu = build_cpu_groupby_chain(100_000, 2, 4, 5_000, cost)
        gpu = build_gpu_host_chain(100_000, 2, 4, 100_000 * 20, cost)
        assert gpu.total_cpu_seconds < cpu.total_cpu_seconds / 2


class TestCostEvents:
    def test_degree_cap_applied(self, cost):
        chain = build_cpu_groupby_chain(1000, 1, 1, 10, cost)
        events = chain.cost_events(degree_cap=4)
        assert all(e.max_degree <= 4 for e in events)

    def test_describe(self, cost):
        chain = build_gpu_host_chain(10, 1, 1, 80, cost)
        assert "MEMCPY" in chain.describe()
