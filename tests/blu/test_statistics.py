"""Unit tests for hashing and KMV sketches."""

import numpy as np
import pytest

from repro.blu.statistics import (
    KmvSketch,
    estimate_distinct,
    mod_hash,
    murmur3_combine,
    murmur3_fmix64,
)


class TestMurmur:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(murmur3_fmix64(keys), murmur3_fmix64(keys))

    def test_distinct_inputs_distinct_outputs(self):
        keys = np.arange(100_000, dtype=np.int64)
        hashed = murmur3_fmix64(keys)
        assert len(np.unique(hashed)) == len(keys)   # fmix64 is a bijection

    def test_avalanche_spreads_consecutive_keys(self):
        keys = np.arange(1024, dtype=np.int64)
        hashed = murmur3_fmix64(keys)
        # Consecutive inputs land in different high-order buckets.
        buckets = hashed >> np.uint64(54)
        assert len(np.unique(buckets)) > 500

    def test_combine_differs_from_parts(self):
        a = np.arange(1000, dtype=np.int64)
        b = np.arange(1000, dtype=np.int64)
        combined = murmur3_combine([a, b])
        assert not np.array_equal(combined, murmur3_fmix64(a))

    def test_combine_order_sensitive(self):
        a = np.array([1, 2], dtype=np.int64)
        b = np.array([3, 4], dtype=np.int64)
        assert not np.array_equal(murmur3_combine([a, b]),
                                  murmur3_combine([b, a]))

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            murmur3_combine([])


class TestModHash:
    def test_in_range(self):
        keys = np.array([-5, 0, 7, 10**12], dtype=np.int64)
        hashed = mod_hash(keys, 16)
        assert ((hashed >= 0) & (hashed < 16)).all()

    def test_bad_buckets(self):
        with pytest.raises(ValueError):
            mod_hash(np.array([1], dtype=np.int64), 0)


class TestKmv:
    def test_exact_below_k(self):
        hashes = murmur3_fmix64(np.arange(100, dtype=np.int64))
        est = estimate_distinct(hashes, k=1024)
        assert est.exact
        assert est.groups == 100

    def test_estimate_above_k_within_tolerance(self):
        true_distinct = 50_000
        keys = np.arange(true_distinct, dtype=np.int64)
        hashes = murmur3_fmix64(np.tile(keys, 4))
        est = estimate_distinct(hashes, k=1024)
        assert not est.exact
        assert abs(est.groups - true_distinct) / true_distinct < 0.15

    def test_incremental_updates_match_oneshot(self):
        keys = murmur3_fmix64(np.arange(10_000, dtype=np.int64))
        sketch = KmvSketch(k=256)
        for chunk in np.array_split(keys, 7):
            sketch.update(chunk)
        incremental = sketch.estimate().groups
        oneshot = estimate_distinct(keys, k=256).groups
        assert incremental == oneshot

    def test_empty_sketch(self):
        assert KmvSketch().estimate().estimate == 0.0

    def test_duplicates_dont_inflate(self):
        hashes = murmur3_fmix64(np.zeros(10_000, dtype=np.int64))
        assert estimate_distinct(hashes).groups == 1

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KmvSketch(k=1)
