"""Unit tests for tables and schemas."""

import numpy as np
import pytest

from repro.blu.column import column_from_values
from repro.blu.datatypes import float64, int32, varchar
from repro.blu.table import Schema, Table
from repro.errors import SchemaError


@pytest.fixture()
def simple_table() -> Table:
    schema = Schema.of(("a", int32()), ("b", float64()), ("c", varchar(4)))
    return Table.from_pydict("t", schema, {
        "a": [1, 2, 3, 4],
        "b": [1.5, 2.5, 3.5, 4.5],
        "c": ["w", "x", "y", "z"],
    })


class TestSchema:
    def test_lookup_case_insensitive(self):
        schema = Schema.of(("Alpha", int32()))
        assert "alpha" in schema
        assert schema.field("ALPHA").name == "Alpha"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("x", int32()), ("X", int32()))

    def test_unknown_column(self):
        schema = Schema.of(("x", int32()))
        with pytest.raises(SchemaError):
            schema.position("nope")

    def test_select_preserves_order(self):
        schema = Schema.of(("a", int32()), ("b", int32()), ("c", int32()))
        assert schema.select(["c", "a"]).names() == ["c", "a"]


class TestTableValidation:
    def test_ragged_columns_rejected(self):
        schema = Schema.of(("a", int32()), ("b", int32()))
        cols = [column_from_values(int32(), [1, 2]),
                column_from_values(int32(), [1, 2, 3])]
        with pytest.raises(SchemaError):
            Table("bad", schema, cols)

    def test_type_mismatch_rejected(self):
        schema = Schema.of(("a", int32()))
        cols = [column_from_values(float64(), [1.0])]
        with pytest.raises(SchemaError):
            Table("bad", schema, cols)

    def test_missing_data_rejected(self):
        schema = Schema.of(("a", int32()), ("b", int32()))
        with pytest.raises(SchemaError):
            Table.from_pydict("bad", schema, {"a": [1]})

    def test_column_count_mismatch(self):
        schema = Schema.of(("a", int32()))
        with pytest.raises(SchemaError):
            Table("bad", schema, [])


class TestTransforms:
    def test_take(self, simple_table):
        taken = simple_table.take(np.array([3, 0]))
        assert taken.to_pydict()["a"] == [4, 1]
        assert taken.to_pydict()["c"] == ["z", "w"]

    def test_filter(self, simple_table):
        kept = simple_table.filter(np.array([1, 2]))
        assert kept.to_pydict()["b"] == [2.5, 3.5]

    def test_select(self, simple_table):
        projected = simple_table.select(["c", "a"])
        assert projected.schema.names() == ["c", "a"]
        assert projected.num_rows == 4

    def test_head(self, simple_table):
        assert simple_table.head(2).num_rows == 2
        assert simple_table.head(10).num_rows == 4

    def test_getitem(self, simple_table):
        assert list(simple_table["a"].decoded()) == [1, 2, 3, 4]

    def test_sizes(self, simple_table):
        assert simple_table.num_columns == 3
        assert simple_table.encoded_nbytes > 0
