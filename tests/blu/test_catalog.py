"""Unit tests for the catalog and its statistics."""

import pytest

from repro.blu.catalog import Catalog
from repro.blu.datatypes import int32, varchar
from repro.blu.table import Schema, Table
from repro.errors import SchemaError


@pytest.fixture()
def catalog() -> Catalog:
    schema = Schema.of(("k", int32()), ("tag", varchar(3)))
    table = Table.from_pydict("items", schema, {
        "k": [1, 2, 2, 3, None],
        "tag": ["a", "b", "a", "c", "a"],
    })
    cat = Catalog()
    cat.register(table)
    return cat


class TestRegistration:
    def test_lookup_case_insensitive(self, catalog):
        assert catalog.table("ITEMS").name == "items"
        assert "Items" in catalog

    def test_duplicate_rejected(self, catalog):
        schema = Schema.of(("k", int32()))
        dup = Table.from_pydict("items", schema, {"k": [1]})
        with pytest.raises(SchemaError):
            catalog.register(dup)

    def test_drop(self, catalog):
        catalog.drop("items")
        assert "items" not in catalog
        with pytest.raises(SchemaError):
            catalog.table("items")

    def test_drop_unknown(self, catalog):
        with pytest.raises(SchemaError):
            catalog.drop("ghost")

    def test_totals(self, catalog):
        assert catalog.total_rows == 5
        assert catalog.total_encoded_nbytes > 0
        assert catalog.table_names() == ["items"]


class TestStatistics:
    def test_distinct_counts(self, catalog):
        stats = catalog.column_stats("items", "k")
        assert stats.rows == 5
        assert stats.distinct == 4   # 1, 2, 3 and the NULL placeholder 0
        assert stats.null_count == 1

    def test_string_stats(self, catalog):
        stats = catalog.column_stats("items", "tag")
        assert stats.distinct == 3
        assert stats.min_value == "a"
        assert stats.max_value == "c"

    def test_selectivity(self, catalog):
        stats = catalog.column_stats("items", "tag")
        assert stats.selectivity_equals == pytest.approx(1 / 3)

    def test_unknown_table_stats(self, catalog):
        with pytest.raises(SchemaError):
            catalog.column_stats("ghost", "k")

    def test_register_without_stats(self):
        cat = Catalog()
        schema = Schema.of(("k", int32()))
        cat.register(Table.from_pydict("t", schema, {"k": [1]}),
                     collect_stats=False)
        assert cat.column_stats("t", "k") is None
