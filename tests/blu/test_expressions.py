"""Unit tests for scalar expressions and predicates."""

import pytest

from repro.blu.datatypes import float64, int32, int64, varchar
from repro.blu.expressions import (
    AggFunc,
    AggSpec,
    And,
    Arithmetic,
    ArithOp,
    Between,
    CmpOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjuncts,
)
from repro.blu.table import Schema, Table
from repro.errors import TypeMismatchError


@pytest.fixture()
def table() -> Table:
    schema = Schema.of(("n", int32()), ("f", float64()), ("s", varchar(8)),
                       ("m", int64()))
    return Table.from_pydict("t", schema, {
        "n": [1, 2, 3, 4, 5],
        "f": [1.0, 2.0, 0.5, 4.0, 2.5],
        "s": ["apple", "banana", "apple", "cherry", "date"],
        "m": [10, None, 30, 40, None],
    })


def mask(expr, table):
    return list(expr.evaluate(table).values.astype(bool))


class TestComparisons:
    def test_numeric_ops(self, table):
        n = ColumnRef("n")
        assert mask(Comparison(CmpOp.EQ, n, Literal(3)), table) == \
            [False, False, True, False, False]
        assert mask(Comparison(CmpOp.LT, n, Literal(3)), table) == \
            [True, True, False, False, False]
        assert mask(Comparison(CmpOp.GE, n, Literal(4)), table) == \
            [False, False, False, True, True]
        assert mask(Comparison(CmpOp.NE, n, Literal(1)), table) == \
            [False, True, True, True, True]

    def test_string_equality_runs_on_codes(self, table):
        expr = Comparison(CmpOp.EQ, ColumnRef("s"), Literal("apple"))
        assert mask(expr, table) == [True, False, True, False, False]

    def test_string_equality_absent_value(self, table):
        expr = Comparison(CmpOp.EQ, ColumnRef("s"), Literal("kiwi"))
        assert mask(expr, table) == [False] * 5

    def test_string_range_on_collation(self, table):
        expr = Comparison(CmpOp.LT, ColumnRef("s"), Literal("banana"))
        assert mask(expr, table) == [True, False, True, False, False]
        expr = Comparison(CmpOp.GE, ColumnRef("s"), Literal("banana"))
        assert mask(expr, table) == [False, True, False, True, True]

    def test_string_range_boundary_absent(self, table):
        expr = Comparison(CmpOp.LE, ColumnRef("s"), Literal("babble"))
        assert mask(expr, table) == [True, False, True, False, False]

    def test_nulls_compare_false(self, table):
        expr = Comparison(CmpOp.GT, ColumnRef("m"), Literal(5))
        assert mask(expr, table) == [True, False, True, True, False]

    def test_string_vs_number_rejected(self, table):
        expr = Comparison(CmpOp.EQ, ColumnRef("s"), ColumnRef("n"))
        with pytest.raises(TypeMismatchError):
            expr.evaluate(table)

    def test_column_to_column(self, table):
        expr = Comparison(CmpOp.GT, ColumnRef("f"), ColumnRef("n"))
        assert mask(expr, table) == [False, False, False, False, False]


class TestCompoundPredicates:
    def test_between(self, table):
        expr = Between(ColumnRef("n"), Literal(2), Literal(4))
        assert mask(expr, table) == [False, True, True, True, False]

    def test_in_list_numeric(self, table):
        expr = InList(ColumnRef("n"), (1, 4, 9))
        assert mask(expr, table) == [True, False, False, True, False]

    def test_in_list_strings_on_codes(self, table):
        expr = InList(ColumnRef("s"), ("apple", "date", "kiwi"))
        assert mask(expr, table) == [True, False, True, False, True]

    def test_like_prefix_suffix_contains(self, table):
        assert mask(Like(ColumnRef("s"), "ba%"), table) == \
            [False, True, False, False, False]
        assert mask(Like(ColumnRef("s"), "%rry"), table) == \
            [False, False, False, True, False]
        assert mask(Like(ColumnRef("s"), "%an%"), table) == \
            [False, True, False, False, False]
        assert mask(Like(ColumnRef("s"), "date"), table) == \
            [False, False, False, False, True]

    def test_like_on_number_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            Like(ColumnRef("n"), "1%").evaluate(table)

    def test_is_null(self, table):
        assert mask(IsNull(ColumnRef("m")), table) == \
            [False, True, False, False, True]

    def test_is_not_null(self, table):
        assert mask(IsNull(ColumnRef("m"), negated=True), table) == \
            [True, False, True, True, False]

    def test_and_or_not(self, table):
        n = ColumnRef("n")
        low = Comparison(CmpOp.LE, n, Literal(2))
        high = Comparison(CmpOp.GE, n, Literal(4))
        assert mask(Or((low, high)), table) == [True, True, False, True, True]
        assert mask(And((low, high)), table) == [False] * 5
        assert mask(Not(low), table) == [False, False, True, True, True]


class TestArithmetic:
    def test_add_mul(self, table):
        expr = Arithmetic(ArithOp.ADD, ColumnRef("n"),
                          Arithmetic(ArithOp.MUL, ColumnRef("n"), Literal(10)))
        assert list(expr.evaluate(table).values) == [11, 22, 33, 44, 55]

    def test_float_promotion(self, table):
        expr = Arithmetic(ArithOp.MUL, ColumnRef("n"), ColumnRef("f"))
        result = expr.evaluate(table)
        assert result.dtype == float64()
        assert list(result.values) == [1.0, 4.0, 1.5, 16.0, 12.5]

    def test_integer_division(self, table):
        expr = Arithmetic(ArithOp.DIV, ColumnRef("n"), Literal(2))
        assert list(expr.evaluate(table).values) == [0, 1, 1, 2, 2]

    def test_division_by_zero_yields_null(self, table):
        expr = Arithmetic(ArithOp.DIV, ColumnRef("n"), Literal(0))
        result = expr.evaluate(table)
        assert result.nulls is not None and result.nulls.all()

    def test_sub_with_nulls(self, table):
        expr = Arithmetic(ArithOp.SUB, ColumnRef("m"), Literal(1))
        result = expr.evaluate(table)
        assert list(result.nulls) == [False, True, False, False, True]


class TestAggSpecs:
    def test_output_types(self, table):
        assert AggSpec(AggFunc.COUNT, None, "c").output_type(table) == int64()
        assert AggSpec(AggFunc.AVG, ColumnRef("n"), "a") \
            .output_type(table) == float64()
        assert AggSpec(AggFunc.SUM, ColumnRef("n"), "s") \
            .output_type(table) == int64()
        assert AggSpec(AggFunc.MIN, ColumnRef("f"), "m") \
            .output_type(table) == float64()

    def test_columns(self):
        assert AggSpec(AggFunc.COUNT, None, "c").columns() == []
        assert AggSpec(AggFunc.SUM, ColumnRef("x"), "s").columns() == ["x"]


class TestConjuncts:
    def test_flattening(self):
        a = Comparison(CmpOp.EQ, ColumnRef("x"), Literal(1))
        b = Comparison(CmpOp.EQ, ColumnRef("y"), Literal(2))
        c = Comparison(CmpOp.EQ, ColumnRef("z"), Literal(3))
        nested = And((a, And((b, c))))
        assert conjuncts(nested) == [a, b, c]

    def test_none(self):
        assert conjuncts(None) == []

    def test_or_is_opaque(self):
        a = Comparison(CmpOp.EQ, ColumnRef("x"), Literal(1))
        either = Or((a, a))
        assert conjuncts(either) == [either]


def test_complexity_counts_grow():
    simple = Comparison(CmpOp.EQ, ColumnRef("x"), Literal(1))
    compound = And((simple, Between(ColumnRef("y"), Literal(0), Literal(9))))
    assert compound.complexity() > simple.complexity() > 0
