"""Unit tests for columnar storage."""

import numpy as np
import pytest

from repro.blu.column import Column, column_from_array, column_from_values
from repro.blu.datatypes import int32, int64, varchar
from repro.errors import SchemaError, TypeMismatchError


class TestConstruction:
    def test_numeric_column_roundtrip(self):
        col = column_from_values(int32(), [3, 1, 2])
        assert list(col.decoded()) == [3, 1, 2]
        assert col.dtype == int32()

    def test_string_column_gets_dictionary(self):
        col = column_from_values(varchar(5), ["b", "a", "b", "c"])
        assert col.dictionary is not None
        assert list(col.decoded()) == ["b", "a", "b", "c"]

    def test_string_without_dictionary_rejected(self):
        with pytest.raises(SchemaError):
            Column(varchar(5), np.zeros(3, dtype=np.int32))

    def test_numeric_with_dictionary_rejected(self):
        string_col = column_from_values(varchar(5), ["x"])
        with pytest.raises(SchemaError):
            Column(int32(), np.zeros(1, np.int32), string_col.dictionary)

    def test_null_mask_length_checked(self):
        with pytest.raises(SchemaError):
            Column(int32(), np.zeros(3, np.int32),
                   null_mask=np.zeros(2, bool))

    def test_column_from_array_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            column_from_array(varchar(5), np.zeros(2, np.int32))


class TestNulls:
    def test_none_becomes_null(self):
        col = column_from_values(int64(), [1, None, 3])
        assert col.has_nulls
        assert col.values_at([0, 1, 2]) == [1, None, 3]

    def test_no_nulls_no_mask(self):
        col = column_from_values(int64(), [1, 2])
        assert col.null_mask is None

    def test_null_strings(self):
        col = column_from_values(varchar(3), ["a", None, "c"])
        assert col.values_at([0, 1, 2]) == ["a", None, "c"]


class TestTransforms:
    def test_take_preserves_dictionary(self):
        col = column_from_values(varchar(5), ["x", "y", "z"])
        taken = col.take(np.array([2, 0]))
        assert list(taken.decoded()) == ["z", "x"]
        assert taken.dictionary is col.dictionary

    def test_filter(self):
        col = column_from_values(int32(), [10, 20, 30, 40])
        kept = col.filter(np.array([1, 3]))
        assert list(kept.decoded()) == [20, 40]

    def test_slice(self):
        col = column_from_values(int32(), [1, 2, 3, 4])
        assert list(col.slice(1, 3).decoded()) == [2, 3]

    def test_take_carries_null_mask(self):
        col = column_from_values(int32(), [1, None, 3])
        taken = col.take(np.array([1, 2]))
        assert taken.values_at([0, 1]) == [None, 3]


class TestOrderAwareness:
    def test_sort_keys_for_strings_follow_collation(self):
        col = column_from_values(varchar(5), ["delta", "alpha", "charlie"])
        keys = col.sort_keys()
        order = np.argsort(keys)
        assert list(col.decoded()[order]) == ["alpha", "charlie", "delta"]

    def test_min_max_numeric(self):
        col = column_from_values(int32(), [5, -2, 9])
        assert col.min_max() == (-2, 9)

    def test_min_max_string(self):
        col = column_from_values(varchar(5), ["pear", "apple", "plum"])
        assert col.min_max() == ("apple", "plum")

    def test_min_max_skips_nulls(self):
        col = column_from_values(int32(), [None, 4, 2, None])
        assert col.min_max() == (2, 4)

    def test_min_max_empty(self):
        col = column_from_values(int32(), [])
        assert col.min_max() == (None, None)


class TestSizes:
    def test_encoded_smaller_than_logical_for_wide_strings(self):
        col = column_from_values(varchar(50), ["x" * 40] * 100)
        assert col.encoded_nbytes < col.logical_nbytes

    def test_encoded_bytes_counts_null_mask(self):
        plain = column_from_values(int32(), [1, 2, 3, 4])
        nullable = column_from_values(int32(), [1, 2, None, 4])
        assert nullable.encoded_nbytes > plain.encoded_nbytes
