"""End-to-end integration: the GPU prototype must be functionally
indistinguishable from stock BLU across the whole workload surface."""

import pytest

from repro.blu import BluEngine
from repro.config import cpu_only_testbed
from repro.core import GpuAcceleratedEngine
from repro.workloads.bdinsights import bd_insights_queries
from repro.workloads.cognos_rolap import cognos_rolap_queries
from repro.workloads.query import QueryCategory
from tests.conftest import tables_equal


@pytest.fixture(scope="module")
def engines():
    from repro.workloads.datagen import generate_database, scaled_config

    catalog = generate_database(scale=0.02, seed=11)
    config = scaled_config(catalog)
    return (GpuAcceleratedEngine(catalog, config=config),
            BluEngine(catalog, config=cpu_only_testbed()))


class TestWorkloadParity:
    """Every benchmark query returns identical results with and without
    the GPU — the baseline requirement of the whole demonstration."""

    @pytest.mark.parametrize("query", [
        q for q in bd_insights_queries()
        if q.category is QueryCategory.COMPLEX
    ], ids=lambda q: q.query_id)
    def test_bd_complex(self, engines, query):
        gpu, cpu = engines
        assert tables_equal(gpu.execute_sql(query.sql).table,
                            cpu.execute_sql(query.sql).table)

    @pytest.mark.parametrize("query", [
        q for q in bd_insights_queries()
        if q.category is QueryCategory.INTERMEDIATE
    ][:10], ids=lambda q: q.query_id)
    def test_bd_intermediate(self, engines, query):
        gpu, cpu = engines
        assert tables_equal(gpu.execute_sql(query.sql).table,
                            cpu.execute_sql(query.sql).table)

    @pytest.mark.parametrize("query", [
        q for q in bd_insights_queries()
        if q.category is QueryCategory.SIMPLE
    ][::7], ids=lambda q: q.query_id)
    def test_bd_simple(self, engines, query):
        gpu, cpu = engines
        assert tables_equal(gpu.execute_sql(query.sql).table,
                            cpu.execute_sql(query.sql).table)

    @pytest.mark.parametrize("query", cognos_rolap_queries()[::5],
                             ids=lambda q: q.query_id)
    def test_rolap(self, engines, query):
        gpu, cpu = engines
        assert tables_equal(gpu.execute_sql(query.sql).table,
                            cpu.execute_sql(query.sql).table)


class TestSystemHygiene:
    def test_no_leaked_device_memory_after_workload(self, engines):
        gpu, _ = engines
        for query in cognos_rolap_queries()[:6]:
            gpu.execute_sql(query.sql)
        for device in gpu.devices:
            # Cached column segments legitimately outlive the query; all
            # other reservations must have been returned.
            cached = device.cache.cached_bytes if device.cache else 0
            assert device.memory.reserved == cached
            assert all(r.tag == "cache"
                       for r in device.memory.live_reservations)
            assert device.outstanding_jobs == 0
        assert gpu.pinned.used == 0

    def test_monitor_saw_every_query(self, engines):
        gpu, _ = engines
        before = len(gpu.monitor.profiles)
        gpu.execute_sql("SELECT COUNT(*) AS c FROM store_sales")
        assert len(gpu.monitor.profiles) == before + 1

    def test_monitor_report_renders_after_workload(self, engines):
        gpu, _ = engines
        report = gpu.monitor.report()
        assert "gpu_offloads" in report


class TestNullableColumnsThroughGpuPaths:
    def test_hybrid_sort_on_nullable_key_matches_cpu(self, engines):
        gpu, cpu = engines
        sql = ("SELECT ss_customer_sk, ss_net_paid FROM store_sales "
               "ORDER BY ss_customer_sk, ss_ticket_number")
        a = gpu.execute_sql(sql)
        b = cpu.execute_sql(sql)
        assert tables_equal(a.table, b.table)
        # NULL customers collate last.
        keys = a.table.to_pydict()["ss_customer_sk"]
        first_null = keys.index(None)
        assert all(k is None for k in keys[first_null:])

    def test_groupby_nullable_key_offloads_and_matches(self, engines):
        gpu, cpu = engines
        sql = ("SELECT ss_customer_sk, SUM(ss_net_paid) AS paid, "
               "COUNT(*) AS c FROM store_sales GROUP BY ss_customer_sk")
        a = gpu.execute_sql(sql)
        b = cpu.execute_sql(sql)
        assert a.profile.offloaded
        assert tables_equal(a.table, b.table)
        assert None in a.table.to_pydict()["ss_customer_sk"]
